//! Translation-validation suite for the decoded execution engine.
//!
//! Two halves:
//!
//! * **Soundness on real decodes** — a hand-assembled program that
//!   exercises every pattern in the fusion catalogue (all fifteen
//!   fused pairs, both quad forms, block runs with multi-segment
//!   icache coverage) validates cleanly under every machine model,
//!   fusion on and off. A companion coverage assertion proves the
//!   program really does decode to every pattern, so "clean" is not
//!   vacuous.
//! * **Teeth (mutation tests)** — distinct surgical corruptions of a
//!   decoded program (operand chaining, rollback slots, batched run
//!   costs, branch targets, second-half fusion metadata, dispatch
//!   entries, fault-attribution addresses, per-op costs) must each be
//!   caught, with the right [`DecodeTvClass`].

use std::collections::BTreeSet;

use r2c_check::{check_decode, check_decoded_program, CheckKind, DecodeTvClass};
use r2c_vm::decode_inspect::{decode_program, DecodedProgram, Op};
use r2c_vm::insn::AluOp;
use r2c_vm::unwind::UnwindTable;
use r2c_vm::{
    Cond, Gpr, Image, Insn, MachineKind, MemRef, NativeKind, SectionLayout, Symbol, SymbolKind,
    PAGE_SIZE,
};

const TEXT_BASE: u64 = 0x40_0000;
const DATA_BASE: u64 = 0x60_0000;

/// Hand-assembles an image from instructions laid out contiguously,
/// mirroring the compiler's section layout.
fn asm(insns: Vec<Insn>, natives: Vec<NativeKind>) -> Image {
    let mut addrs = Vec::new();
    let mut a = TEXT_BASE;
    for i in &insns {
        addrs.push(a);
        a += i.len();
    }
    let text_end = a.div_ceil(PAGE_SIZE) * PAGE_SIZE;
    Image {
        insns,
        insn_addrs: addrs,
        layout: SectionLayout {
            text_base: TEXT_BASE,
            text_end,
            data_base: DATA_BASE,
            data_end: DATA_BASE + 0x4000,
            heap_base: 0x10_0000_0000,
            heap_size: 16 * 1024 * 1024,
            stack_top: 0x7fff_ffff_f000,
            stack_size: 1024 * 1024,
        },
        entry: TEXT_BASE,
        constructors: vec![],
        data_init: vec![],
        xom: true,
        symbols: vec![Symbol {
            name: "main".into(),
            addr: TEXT_BASE,
            size: 0,
            kind: SymbolKind::Function,
        }],
        natives,
        unwind: UnwindTable::default(),
    }
}

/// Address of instruction `i` under the contiguous layout `asm` uses.
fn addr_of(insns: &[Insn], i: usize) -> u64 {
    TEXT_BASE + insns[..i].iter().map(|x| x.len()).sum::<u64>()
}

/// A program whose decode contains every fused-pair pattern, both quad
/// forms (and their pair-head variants), and block runs spanning more
/// than one icache line.
fn all_patterns_program() -> Image {
    let data = MemRef::base(Gpr::Rsi);
    let data8 = MemRef {
        base: Gpr::Rsi,
        index: None,
        disp: 8,
    };
    let mut insns = vec![
        Insn::MovAbs {
            dst: Gpr::Rsi,
            imm: DATA_BASE,
        },
        Insn::MovImm {
            dst: Gpr::Rax,
            imm: 0,
        },
        Insn::MovImm {
            dst: Gpr::Rcx,
            imm: 7,
        },
        Insn::MovImm {
            dst: Gpr::Rdx,
            imm: 9,
        },
        Insn::MovImm {
            dst: Gpr::Rdi,
            imm: 5,
        },
    ];
    // AluImm pairs with nothing in the catalogue, so it stops greedy
    // pairing from consuming a cluster's first instruction into a
    // cross-cluster pair.
    let sep = Insn::AluImm {
        op: AluOp::Or,
        dst: Gpr::Rbp,
        imm: 0,
    };
    // Every straight-line pair pattern, emitted at three byte
    // alignments (the Nop spacers shift the stream mod the icache
    // line), so each pair forms in at least one copy even when another
    // copy straddles a line boundary (in-run pairs are segment-local).
    for spacer in [1u8, 2, 3] {
        insns.push(Insn::Nop { len: spacer });
        for cluster in [
            // MovReg+AluReg.
            vec![
                Insn::MovReg {
                    dst: Gpr::Rbx,
                    src: Gpr::Rcx,
                },
                Insn::AluReg {
                    op: AluOp::Add,
                    dst: Gpr::Rax,
                    src: Gpr::Rbx,
                },
            ],
            // AluReg+MovReg.
            vec![
                Insn::AluReg {
                    op: AluOp::Add,
                    dst: Gpr::Rax,
                    src: Gpr::Rdx,
                },
                Insn::MovReg {
                    dst: Gpr::R8,
                    src: Gpr::Rax,
                },
            ],
            // MovImm+MovReg.
            vec![
                Insn::MovImm {
                    dst: Gpr::R9,
                    imm: 0x1234,
                },
                Insn::MovReg {
                    dst: Gpr::R10,
                    src: Gpr::R9,
                },
            ],
            // MovReg+MovImm.
            vec![
                Insn::MovReg {
                    dst: Gpr::R11,
                    src: Gpr::Rax,
                },
                Insn::MovImm {
                    dst: Gpr::R12,
                    imm: 42,
                },
            ],
            // MovReg+Store.
            vec![
                Insn::MovReg {
                    dst: Gpr::R13,
                    src: Gpr::Rdx,
                },
                Insn::Store {
                    mem: data,
                    src: Gpr::R13,
                },
            ],
            // Load+MovReg.
            vec![
                Insn::Load {
                    dst: Gpr::R14,
                    mem: data,
                },
                Insn::MovReg {
                    dst: Gpr::R15,
                    src: Gpr::R14,
                },
            ],
            // Store+Load.
            vec![
                Insn::Store {
                    mem: data8,
                    src: Gpr::Rax,
                },
                Insn::Load {
                    dst: Gpr::Rbx,
                    mem: data8,
                },
            ],
            // Lea+MovReg.
            vec![
                Insn::Lea {
                    dst: Gpr::Rcx,
                    mem: MemRef {
                        base: Gpr::Rsi,
                        index: Some((Gpr::Rdi, 1)),
                        disp: 16,
                    },
                },
                Insn::MovReg {
                    dst: Gpr::Rdx,
                    src: Gpr::Rcx,
                },
            ],
            // CmpReg+SetCc.
            vec![
                Insn::CmpReg {
                    a: Gpr::Rax,
                    b: Gpr::R8,
                },
                Insn::SetCc {
                    cond: Cond::Le,
                    dst: Gpr::R9,
                },
            ],
            // Push+Push, Pop+Pop (balanced within the cluster).
            vec![
                Insn::Push { src: Gpr::Rax },
                Insn::Push { src: Gpr::Rcx },
                Insn::Pop { dst: Gpr::Rax },
                Insn::Pop { dst: Gpr::Rcx },
            ],
        ] {
            insns.push(sep);
            insns.extend(cluster);
        }
    }
    // Quad templates: the operand-chained shape (collapses to
    // AluImmQuad) back-to-back with the generic shape (stays
    // MovImmAluQuad), inside a long straight-line stretch so both land
    // in a run and chain into the *QuadPair heads. Also at three
    // alignments, so adjacent quads share a segment in at least one
    // copy and both pair-head forms appear.
    for spacer in [1u8, 2, 3] {
        insns.push(Insn::Nop { len: spacer });
        for (op, imm) in [(AluOp::Add, 3u64), (AluOp::Xor, 0x5a)] {
            insns.push(Insn::MovImm { dst: Gpr::R8, imm });
            insns.push(Insn::MovReg {
                dst: Gpr::R9,
                src: Gpr::R10,
            });
            insns.push(Insn::AluReg {
                op,
                dst: Gpr::R9,
                src: Gpr::R8,
            });
            insns.push(Insn::MovReg {
                dst: Gpr::R11,
                src: Gpr::R9,
            });
            insns.push(Insn::MovImm {
                dst: Gpr::Rax,
                imm: 7,
            });
            insns.push(Insn::MovReg {
                dst: Gpr::Rbx,
                src: Gpr::Rdx,
            });
            insns.push(Insn::AluReg {
                op,
                dst: Gpr::R12,
                src: Gpr::R13,
            });
            insns.push(Insn::MovReg {
                dst: Gpr::R14,
                src: Gpr::Rsi,
            });
        }
    }
    // Pad the stretch well past one 64-byte icache line so the run
    // spans multiple segments.
    for i in 0..24 {
        insns.push(Insn::MovImm {
            dst: Gpr::ALL[(i % 8) + 8],
            imm: i as u64,
        });
    }
    // The three compare-and-branch pairs, each skipping one poison op.
    for (cmp, cond) in [
        (
            Insn::CmpReg {
                a: Gpr::R14,
                b: Gpr::R15,
            },
            Cond::Le,
        ),
        (
            Insn::CmpImm {
                a: Gpr::Rdi,
                imm: 5,
            },
            Cond::Eq,
        ),
        (Insn::Test { a: Gpr::Rdi }, Cond::Ne),
    ] {
        let here = insns.len();
        let skip_to = {
            let mut probe = insns.clone();
            probe.push(cmp);
            probe.push(Insn::Jcc { cond, target: 0 });
            probe.push(Insn::AluImm {
                op: AluOp::Add,
                dst: Gpr::Rax,
                imm: 1000,
            });
            addr_of(&probe, here + 3)
        };
        insns.push(cmp);
        insns.push(Insn::Jcc {
            cond,
            target: skip_to,
        });
        insns.push(Insn::AluImm {
            op: AluOp::Add,
            dst: Gpr::Rax,
            imm: 1000,
        });
    }
    // Call a callee whose epilogue is the Pop+Ret pair.
    let call_at = insns.len();
    let f_addr = {
        let mut probe = insns.clone();
        probe.push(Insn::Call { target: 0 });
        probe.push(Insn::Ret);
        addr_of(&probe, call_at + 2)
    };
    insns.push(Insn::Call { target: f_addr });
    insns.push(Insn::Ret);
    insns.push(Insn::Push { src: Gpr::Rbp });
    insns.push(Insn::MovImm {
        dst: Gpr::Rbp,
        imm: 0x77,
    });
    insns.push(Insn::Pop { dst: Gpr::Rbp });
    insns.push(Insn::Ret);
    asm(insns, vec![])
}

/// Catalogue name of a decoded op, for the coverage assertion.
fn pattern_name(op: &Op) -> Option<&'static str> {
    Some(match op {
        Op::MovRegAluReg { .. } => "MovRegAluReg",
        Op::AluRegMovReg { .. } => "AluRegMovReg",
        Op::MovImmMovReg { .. } => "MovImmMovReg",
        Op::MovRegMovImm { .. } => "MovRegMovImm",
        Op::MovRegStore { .. } => "MovRegStore",
        Op::LoadMovReg { .. } => "LoadMovReg",
        Op::StoreLoad { .. } => "StoreLoad",
        Op::LeaMovReg { .. } => "LeaMovReg",
        Op::CmpRegJcc { .. } => "CmpRegJcc",
        Op::CmpImmJcc { .. } => "CmpImmJcc",
        Op::TestJcc { .. } => "TestJcc",
        Op::CmpRegSetCc { .. } => "CmpRegSetCc",
        Op::PushPush { .. } => "PushPush",
        Op::PopPop { .. } => "PopPop",
        Op::PopRet { .. } => "PopRet",
        Op::MovImmAluQuad { .. } => "MovImmAluQuad",
        Op::MovImmAluQuadPair { .. } => "MovImmAluQuadPair",
        Op::AluImmQuad { .. } => "AluImmQuad",
        Op::AluImmQuadPair { .. } => "AluImmQuadPair",
        Op::Run { .. } => "Run",
        _ => return None,
    })
}

/// Every fused/derived pattern the decoder can emit.
const ALL_PATTERNS: [&str; 20] = [
    "MovRegAluReg",
    "AluRegMovReg",
    "MovImmMovReg",
    "MovRegMovImm",
    "MovRegStore",
    "LoadMovReg",
    "StoreLoad",
    "LeaMovReg",
    "CmpRegJcc",
    "CmpImmJcc",
    "TestJcc",
    "CmpRegSetCc",
    "PushPush",
    "PopPop",
    "PopRet",
    "MovImmAluQuad",
    "MovImmAluQuadPair",
    "AluImmQuad",
    "AluImmQuadPair",
    "Run",
];

fn classes_of(errs: &[r2c_check::CheckError]) -> Vec<DecodeTvClass> {
    errs.iter()
        .map(|e| match &e.kind {
            CheckKind::DecodeTv { class, .. } => *class,
            other => panic!("non-decode-tv finding: {other}"),
        })
        .collect()
}

/// Decode the all-patterns program (EPYC Rome, fused), corrupt it with
/// `mutate`, and return the validator's finding classes. Asserts the
/// pristine decode validates cleanly first, so a catch is attributable
/// to the mutation alone.
fn corrupt(mutate: impl FnOnce(&mut DecodedProgram)) -> Vec<DecodeTvClass> {
    let image = all_patterns_program();
    let mut prog = decode_program(&image, &MachineKind::EpycRome.config(), true);
    assert_eq!(
        check_decoded_program(&prog, &image),
        vec![],
        "pristine decode must validate cleanly"
    );
    mutate(&mut prog);
    let errs = check_decoded_program(&prog, &image);
    assert!(!errs.is_empty(), "corruption escaped the validator");
    classes_of(&errs)
}

/// The all-patterns program validates cleanly under every machine
/// model, fusion on and off — and its decode really does contain every
/// pattern in the catalogue, so the clean verdict covers all of them.
#[test]
fn all_patterns_validate_cleanly_on_every_machine() {
    let image = all_patterns_program();
    let errs = check_decode(&image);
    assert_eq!(errs, vec![], "clean decode must produce no findings");

    let prog = decode_program(&image, &MachineKind::EpycRome.config(), true);
    let mut seen = BTreeSet::new();
    for dop in &prog.ops {
        seen.extend(pattern_name(&dop.op));
    }
    for ri in &prog.runs {
        seen.extend(pattern_name(&ri.leader));
    }
    for e in &prog.run_ops {
        seen.extend(pattern_name(&e.op));
    }
    for p in ALL_PATTERNS {
        assert!(seen.contains(p), "decode never produced pattern {p}");
    }
}

/// Unfused decodes of the same program validate as pure
/// single-instruction streams.
#[test]
fn unfused_decode_validates_cleanly() {
    let image = all_patterns_program();
    for kind in MachineKind::ALL {
        let prog = decode_program(&image, &kind.config(), false);
        assert!(prog.runs.is_empty(), "unfused decode must have no runs");
        assert_eq!(check_decoded_program(&prog, &image), vec![]);
    }
}

// --- Mutation tests: each corruption must be caught, with the right
// --- obligation class.

/// Corrupt the operand chaining of a fused pair inside a run: the
/// second half's source register no longer matches the instruction
/// stream, so the symbolic final states diverge.
#[test]
fn catches_corrupted_pair_operand_chaining() {
    let classes = corrupt(|prog| {
        let e = prog
            .run_ops
            .iter_mut()
            .find_map(|e| match &mut e.op {
                Op::MovRegAluReg { src2, .. } => Some(src2),
                _ => None,
            })
            .expect("no MovRegAluReg in any run");
        *e = if *e == Gpr::Rbp { Gpr::Rdi } else { Gpr::Rbp };
    });
    assert!(classes.contains(&DecodeTvClass::State), "{classes:?}");
}

/// Skip a rollback slot: bump one run entry's `k`. A mid-run fault in
/// that entry would now unwind the wrong number of members.
#[test]
fn catches_skipped_rollback_slot() {
    let classes = corrupt(|prog| {
        prog.run_ops[0].k += 1;
    });
    assert!(classes.contains(&DecodeTvClass::State), "{classes:?}");
}

/// Off-by-one a run's batched cycle charge.
#[test]
fn catches_off_by_one_members_cost() {
    let classes = corrupt(|prog| {
        prog.runs[0].members_cost += 1;
    });
    assert_eq!(classes, vec![DecodeTvClass::Cost]);
}

/// Mis-resolve one pre-resolved direct branch: the decoded successor
/// index no longer maps back to the source target address.
#[test]
fn catches_misresolved_branch_target() {
    let classes = corrupt(|prog| {
        let tgt = prog
            .ops
            .iter_mut()
            .find_map(|dop| match &mut dop.op {
                Op::CmpImmJcc { tgt, .. } => Some(tgt),
                _ => None,
            })
            .expect("no CmpImmJcc at top level");
        *tgt += 1;
    });
    assert_eq!(classes, vec![DecodeTvClass::Target]);
}

/// Corrupt a top-level pair's pre-baked second-half cost: `second!`
/// would charge the wrong cycles for the second instruction.
#[test]
fn catches_wrong_second_half_cost() {
    let classes = corrupt(|prog| {
        let f2 = prog
            .ops
            .iter_mut()
            .find_map(|dop| match &mut dop.op {
                Op::CmpRegJcc { f2, .. } => Some(f2),
                _ => None,
            })
            .expect("no top-level CmpRegJcc");
        f2.cost2 += 1;
    });
    assert_eq!(classes, vec![DecodeTvClass::Cost]);
}

/// Corrupt one dense dispatch-table entry: an indirect transfer to
/// that text offset would land on the wrong instruction.
#[test]
fn catches_corrupted_dispatch_entry() {
    let classes = corrupt(|prog| {
        let off = prog
            .dispatch
            .iter()
            .position(|&x| x == 3)
            .expect("instruction 3 not in dispatch table");
        prog.dispatch[off] = 7;
    });
    assert_eq!(classes, vec![DecodeTvClass::Target]);
}

/// Corrupt a run entry's fault-attribution offset: a fault in that
/// member would be reported at the wrong address.
#[test]
fn catches_wrong_fault_attribution_address() {
    let classes = corrupt(|prog| {
        prog.run_ops[0].off += 1;
    });
    assert!(classes.contains(&DecodeTvClass::State), "{classes:?}");
}

/// Off-by-one a single op's pre-baked base cost.
#[test]
fn catches_wrong_prebaked_cost() {
    let classes = corrupt(|prog| {
        prog.ops[0].cost += 1;
    });
    assert_eq!(classes, vec![DecodeTvClass::Cost]);
}

/// Corrupt the collapsed ALU-immediate quad's immediate: the collapsed
/// form must stay algebraically equal to its 4-instruction expansion.
#[test]
fn catches_corrupted_quad_immediate() {
    let classes = corrupt(|prog| {
        let imm = prog
            .run_ops
            .iter_mut()
            .find_map(|e| match &mut e.op {
                Op::AluImmQuad { imm, .. } | Op::AluImmQuadPair { imm, .. } => Some(imm),
                _ => None,
            })
            .expect("no collapsed quad in any run");
        *imm ^= 1;
    });
    assert!(classes.contains(&DecodeTvClass::State), "{classes:?}");
}

/// Swap a `Jcc` condition inside a fused compare-and-branch: the
/// successor shape matches but the guard diverges.
#[test]
fn catches_swapped_jcc_condition() {
    let classes = corrupt(|prog| {
        let cond = prog
            .ops
            .iter_mut()
            .find_map(|dop| match &mut dop.op {
                Op::TestJcc { cond, .. } => Some(cond),
                _ => None,
            })
            .expect("no top-level TestJcc");
        *cond = if *cond == Cond::Eq {
            Cond::Ne
        } else {
            Cond::Eq
        };
    });
    assert!(
        classes.contains(&DecodeTvClass::State),
        "condition swap must be a state divergence: {classes:?}"
    );
}
