//! The *replay* half: verify that a captured program, re-run from
//! scratch, reproduces its trace.
//!
//! In Wasm-R3 the replay stub is generated code that answers each
//! import call with the recorded value. Here the guest's externs are
//! VM hypercalls with deterministic semantics, so the stub does not
//! need to *substitute* answers — it needs to *check* them: a replay
//! stub is the recorded answer table, and replaying means re-recording
//! the module under the same pinned configuration and comparing every
//! boundary event (and the summary) against the table. Any drift — a
//! different allocator answer, a different indirect-call target, a
//! missing output value — is reported with its op index.

use crate::format::{CapturedTrace, ReplayOp};
use crate::record::RecordConfig;
use r2c_ir::Module;

/// A replay stub: the expanded recorded answer stream plus the
/// summary it must reproduce.
#[derive(Clone, Debug)]
pub struct ReplayStub {
    trace: CapturedTrace,
    expanded: Vec<ReplayOp>,
}

impl ReplayStub {
    /// Builds the stub from a captured trace (collapsed or flat).
    pub fn from_trace(trace: &CapturedTrace) -> ReplayStub {
        ReplayStub {
            expanded: trace.expanded_ops(),
            trace: trace.clone(),
        }
    }

    /// The recorded answer for expanded op index `i`.
    pub fn answer(&self, i: usize) -> Option<&ReplayOp> {
        self.expanded.get(i)
    }

    /// Number of expanded ops the stub serves.
    pub fn len(&self) -> usize {
        self.expanded.len()
    }

    /// True if the stub serves no ops.
    pub fn is_empty(&self) -> bool {
        self.expanded.is_empty()
    }

    /// Replays `module` under `rc` and checks every boundary event and
    /// the summary against the recorded answers. Returns the full list
    /// of mismatches (empty ⇒ ok).
    pub fn verify(&self, module: &Module, rc: &RecordConfig) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        let arrivals: Vec<u64> = self
            .expanded
            .iter()
            .filter_map(|op| match op {
                ReplayOp::Arrival { at } => Some(*at),
                _ => None,
            })
            .collect();
        let rec = match crate::record::record_with_arrivals(module, &self.trace.name, rc, &arrivals)
        {
            Ok(r) => r,
            Err(e) => return Err(vec![format!("replay failed to record: {e}")]),
        };
        let got = rec.trace.expanded_ops();
        if got.len() != self.expanded.len() {
            errors.push(format!(
                "op count mismatch: recorded {} ops, replay produced {}",
                self.expanded.len(),
                got.len()
            ));
        }
        for (i, (want, have)) in self.expanded.iter().zip(got.iter()).enumerate() {
            if want != have {
                errors.push(format!(
                    "op {i}: recorded {want:?}, replay produced {have:?}"
                ));
                if errors.len() >= 8 {
                    errors.push("… further op mismatches suppressed".into());
                    break;
                }
            }
        }
        if rec.trace.summary != self.trace.summary {
            errors.push(format!(
                "summary mismatch: recorded {:?}, replay produced {:?}",
                self.trace.summary, rec.trace.summary
            ));
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

/// Convenience: record `module`, build a stub from the fresh trace,
/// and verify the *given* trace replays against it. Used by the
/// pipeline's final gate and the CI smoke path.
pub fn verify_trace(
    trace: &CapturedTrace,
    module: &Module,
    rc: &RecordConfig,
) -> Result<(), Vec<String>> {
    ReplayStub::from_trace(trace).verify(module, rc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::record;
    use r2c_ir::parse_module;
    use r2c_vm::NativeKind;

    fn module() -> Module {
        parse_module(
            "func @main(0) {\nentry:\n  %0 = const 16\n  %1 = extern malloc(%0)\n  \
             %2 = const 5\n  %3 = extern print(%2)\n  %4 = extern free(%1)\n  \
             ret %2\n}\n",
        )
        .unwrap()
    }

    #[test]
    fn faithful_replay_verifies() {
        let m = module();
        let rc = RecordConfig::default();
        let rec = record(&m, "stub-test", &rc).unwrap();
        let stub = ReplayStub::from_trace(&rec.trace);
        assert!(!stub.is_empty());
        stub.verify(&m, &rc).unwrap();
    }

    #[test]
    fn tampered_answer_is_detected() {
        let m = module();
        let rc = RecordConfig::default();
        let mut rec = record(&m, "stub-test", &rc).unwrap();
        // Corrupt one recorded extern answer.
        let pos = rec
            .trace
            .ops
            .iter()
            .position(|op| {
                matches!(
                    op,
                    ReplayOp::Extern {
                        kind: NativeKind::PrintI64,
                        ..
                    }
                )
            })
            .expect("print op recorded");
        if let ReplayOp::Extern { args, .. } = &mut rec.trace.ops[pos] {
            args[0] ^= 1;
        }
        let errs = ReplayStub::from_trace(&rec.trace)
            .verify(&m, &rc)
            .unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("recorded Extern")),
            "{errs:?}"
        );
    }

    #[test]
    fn tampered_summary_is_detected() {
        let m = module();
        let rc = RecordConfig::default();
        let mut rec = record(&m, "stub-test", &rc).unwrap();
        rec.trace.summary.instructions += 1;
        let errs = ReplayStub::from_trace(&rec.trace)
            .verify(&m, &rc)
            .unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("summary mismatch")),
            "{errs:?}"
        );
    }
}
