//! # r2c-replay — record-reduce-replay workload capture
//!
//! The pipeline that turns traced executions into standalone,
//! replayable benchmark workloads (ROADMAP item 3, modeled on
//! Wasm-R3's record-reduce-replay loop):
//!
//! 1. **Record** ([`record`]): run a program under the VM's lossless
//!    capture tracer and log every environment-boundary event — extern
//!    calls with their answers, resolved indirect-call targets,
//!    `no_instrument` boundary crossings, request arrivals — into a
//!    compact versioned binary trace ([`format::CapturedTrace`],
//!    `.r2ct`).
//! 2. **Reduce** ([`reduce`]): collapse repeated op windows into
//!    parameterized [`format::ReplayOp::Rep`] ops and delta-debug the
//!    captured program against the trace oracle, reusing the fuzz
//!    reducer.
//! 3. **Replay** ([`stub`]): re-run the reduced module and check every
//!    boundary answer and the summary against the recorded table; the
//!    result is checked into `crates/replay/workloads/` and registered
//!    with `r2c-workloads` as a first-class benchmark.
//!
//! The `capture` binary in `r2c-bench` drives this end to end
//! (`--bless` to regenerate artifacts, `--verify` as the CI gate).

pub mod format;
pub mod record;
pub mod reduce;
pub mod sources;
pub mod stub;

pub use format::{CapturedTrace, ReplayOp, TraceSummary};
pub use record::{record, record_with_arrivals, RecordConfig, Recording};
pub use reduce::{collapse, expand, reduce_captured, ReduceOracle};
pub use sources::{default_env, env_from_schedule, source, Archetype};
pub use stub::{verify_trace, ReplayStub};

use r2c_ir::{print_module, Module};

/// A finished capture: the reduced module, its collapsed trace, and
/// the provenance the workload file header records.
#[derive(Clone, Debug)]
pub struct Captured {
    /// Workload name.
    pub name: String,
    /// The reduced, replay-verified module.
    pub module: Module,
    /// The collapsed trace (its summary is the replay oracle).
    pub trace: CapturedTrace,
    /// Dynamic call count of the recorded run, guest calls plus native
    /// (extern) calls — the boundary-crossing rate that drives the
    /// workload's Table 2 call-frequency scaling.
    pub calls: u64,
    /// Functions + globals removed by the reduction.
    pub reduced_away: usize,
}

/// Runs the full pipeline on one source module.
///
/// `reduce_rounds == 0` skips the delta-debugging step (used for the
/// webserver capture, whose handler-table globals hold code pointers
/// and therefore fall outside the interpreter-globals oracle).
pub fn capture_pipeline(
    name: &str,
    source: &Module,
    rc: &RecordConfig,
    reduce_rounds: usize,
) -> Result<Captured, String> {
    capture_pipeline_with_arrivals(name, source, rc, reduce_rounds, &[])
}

/// [`capture_pipeline`] with request-arrival cycles merged into the
/// trace (the webserver path).
pub fn capture_pipeline_with_arrivals(
    name: &str,
    source: &Module,
    rc: &RecordConfig,
    reduce_rounds: usize,
    arrivals: &[u64],
) -> Result<Captured, String> {
    let original = record::record_with_arrivals(source, name, rc, arrivals)?;
    let (module, reduced_away) = if reduce_rounds > 0 {
        let (reduction, _oracle) = reduce::reduce_captured(source, rc, reduce_rounds)?;
        let away = (source.funcs.len() - reduction.module.funcs.len())
            + (source.globals.len() - reduction.module.globals.len());
        (reduction.module, away)
    } else {
        (source.clone(), 0)
    };
    // Re-record the reduced module; its trace (not the original's) is
    // what ships, since reduction may legitimately drop boundary
    // events along dead paths.
    let reduced_rec = record::record_with_arrivals(&module, name, rc, arrivals)?;
    if reduced_rec.exit != original.exit || reduced_rec.output != original.output {
        return Err(format!(
            "reduction changed observable behavior of {name}: exit {} -> {}, {} -> {} outputs",
            original.exit,
            reduced_rec.exit,
            original.output.len(),
            reduced_rec.output.len()
        ));
    }
    let mut trace = reduced_rec.trace.clone();
    trace.ops = reduce::collapse(&trace.ops);
    // Final gate: the collapsed trace must replay bit-exactly.
    stub::verify_trace(&trace, &module, rc)
        .map_err(|errs| format!("replay verification of {name} failed: {}", errs.join("; ")))?;
    Ok(Captured {
        name: name.to_string(),
        module,
        trace,
        calls: reduced_rec.stats.calls + reduced_rec.stats.native_calls,
        reduced_away,
    })
}

/// Renders a captured workload as a checked-in `.r2cir` file: a header
/// the registration side parses, followed by the module text.
pub fn workload_file(c: &Captured, archetype: &str) -> String {
    let s = &c.trace.summary;
    format!(
        "# r2c-replay captured workload v1\n\
         # archetype: {archetype}\n\
         # calls: {}\n\
         # instructions: {}\n\
         # externs: {}\n\
         # exit: {}\n\
         # reduced-away: {}\n\
         {}",
        c.calls,
        s.instructions,
        s.allocs + s.frees,
        s.exit,
        c.reduced_away,
        print_module(&c.module)
    )
}

/// Parses a `# key: value` header line out of a workload file.
pub fn header_field(text: &str, key: &str) -> Option<String> {
    let prefix = format!("# {key}: ");
    text.lines()
        .take_while(|l| l.starts_with('#'))
        .find_map(|l| l.strip_prefix(&prefix).map(|v| v.trim().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_end_to_end_on_churn() {
        let a = Archetype::Churn;
        let m = sources::source(a, &sources::default_env(a));
        let rc = RecordConfig::default();
        let cap = capture_pipeline(a.name(), &m, &rc, 3).unwrap();
        assert!(
            cap.reduced_away >= 2,
            "expected the dead helper + unused global to be stripped, got {}",
            cap.reduced_away
        );
        assert!(cap.calls > 0);
        // The workload file roundtrips through the parser.
        let text = workload_file(&cap, a.name());
        assert_eq!(
            header_field(&text, "archetype").as_deref(),
            Some("cap-churn")
        );
        let calls: u64 = header_field(&text, "calls").unwrap().parse().unwrap();
        assert_eq!(calls, cap.calls);
        let back = r2c_ir::parse_module(&text).unwrap();
        assert_eq!(back, cap.module);
    }

    #[test]
    fn pipeline_without_reduction_still_verifies() {
        let a = Archetype::Interp;
        let m = sources::source(a, &sources::default_env(a));
        let rc = RecordConfig::default();
        let cap = capture_pipeline(a.name(), &m, &rc, 0).unwrap();
        assert_eq!(cap.reduced_away, 0);
        // Trace encodes and decodes losslessly.
        let bytes = cap.trace.encode();
        assert_eq!(CapturedTrace::decode(&bytes).unwrap(), cap.trace);
    }
}
