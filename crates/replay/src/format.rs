//! The versioned binary trace format (`.r2ct`).
//!
//! A [`CapturedTrace`] is the on-disk artifact of the *record* half of
//! the pipeline: the complete environment-boundary event stream of one
//! execution, plus a summary block pinning the oracle fields a replay
//! must reproduce. The encoding is deliberately tiny and dependency-
//! free: a 4-byte magic, a little-endian `u32` version, then LEB128
//! varints throughout (signed values zigzag-encoded). Repetitions the
//! reducer collapses are first-class ops ([`ReplayOp::Rep`]), so a
//! million-iteration server loop costs a few bytes instead of a few
//! megabytes — the "parameterized replay op" of Wasm-R3.

use r2c_vm::{ExecStats, NativeKind};

/// Magic bytes opening every `.r2ct` file.
pub const MAGIC: &[u8; 4] = b"R2CT";

/// Current format version. Decoders reject anything newer.
pub const VERSION: u32 = 1;

/// One replay operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayOp {
    /// A native (extern) call and its recorded answer.
    Extern {
        /// The native that ran (encoded by stable id, see
        /// [`native_id`]).
        kind: NativeKind,
        /// `[rdi, rsi, rdx]` at the call.
        args: [u64; 3],
        /// `rax` after the call — the answer a replay stub serves.
        ret: u64,
    },
    /// An indirect call resolved to a concrete target.
    Indirect {
        /// Address of the `callind` instruction.
        at: u64,
        /// Resolved callee address.
        target: u64,
    },
    /// A call into a `no_instrument` boundary function.
    BoundaryCall {
        /// Address of the call instruction.
        at: u64,
        /// Boundary-function entry address.
        target: u64,
    },
    /// A `ret` inside a `no_instrument` boundary function.
    BoundaryRet {
        /// Address of the `ret`.
        at: u64,
    },
    /// A request arrival at `at` simulated guest cycles (recorded from
    /// an `r2c-serve` open-loop schedule).
    Arrival {
        /// Arrival time in simulated guest cycles.
        at: u64,
    },
    /// `count` repetitions of `body` — the parameterized replay op the
    /// reducer emits for collapsed loops. Bodies are flat (no nested
    /// reps).
    Rep {
        /// Repetition count (≥ 2).
        count: u32,
        /// The repeated op sequence.
        body: Vec<ReplayOp>,
    },
}

/// The oracle fields a replay must reproduce, recorded under the
/// pinned record configuration (build config + machine in
/// `record::RecordConfig`); `instructions`/`cycles_deci` additionally
/// pin the bit-identical `ExecStats` contract for that configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Exit code of the run.
    pub exit: i64,
    /// Dynamically executed instructions.
    pub instructions: u64,
    /// Deci-cycles under the record machine's cost model.
    pub cycles_deci: u64,
    /// Executed `call`/`callind` instructions.
    pub calls: u64,
    /// Successful heap allocations observed.
    pub allocs: u64,
    /// Frees observed.
    pub frees: u64,
    /// Number of output values printed.
    pub output_len: u64,
    /// FNV-1a hash over the printed output values.
    pub output_hash: u64,
}

/// A complete captured trace: name, op stream, summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapturedTrace {
    /// Workload name (also the `.r2cir`/`.r2ct` file stem).
    pub name: String,
    /// The (possibly collapsed) replay op stream.
    pub ops: Vec<ReplayOp>,
    /// Oracle summary.
    pub summary: TraceSummary,
}

/// FNV-1a over output values (the summary's output fingerprint).
pub fn output_hash(output: &[i64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in output {
        for b in (v as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    }
    h
}

/// Builds a summary from a run's stats and output plus the tracer's
/// heap counters.
pub fn summary_of(
    exit: i64,
    stats: &ExecStats,
    output: &[i64],
    allocs: u64,
    frees: u64,
) -> TraceSummary {
    TraceSummary {
        exit,
        instructions: stats.instructions,
        cycles_deci: stats.cycles,
        calls: stats.calls,
        allocs,
        frees,
        output_len: output.len() as u64,
        output_hash: output_hash(output),
    }
}

/// Stable on-disk id of a native kind.
pub fn native_id(kind: NativeKind) -> u8 {
    match kind {
        NativeKind::Malloc => 0,
        NativeKind::Free => 1,
        NativeKind::Memalign => 2,
        NativeKind::Mprotect => 3,
        NativeKind::PrintI64 => 4,
        NativeKind::PutChar => 5,
        NativeKind::StackProbe => 6,
    }
}

fn native_of(id: u8) -> Result<NativeKind, String> {
    Ok(match id {
        0 => NativeKind::Malloc,
        1 => NativeKind::Free,
        2 => NativeKind::Memalign,
        3 => NativeKind::Mprotect,
        4 => NativeKind::PrintI64,
        5 => NativeKind::PutChar,
        6 => NativeKind::StackProbe,
        other => return Err(format!("unknown native id {other}")),
    })
}

const TAG_EXTERN: u8 = 1;
const TAG_INDIRECT: u8 = 2;
const TAG_BOUNDARY_CALL: u8 = 3;
const TAG_BOUNDARY_RET: u8 = 4;
const TAG_ARRIVAL: u8 = 5;
const TAG_REP: u8 = 6;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8, String> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| format!("truncated at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return Err("varint overflow".into());
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn zigzag(&mut self) -> Result<i64, String> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }
}

fn encode_op(out: &mut Vec<u8>, op: &ReplayOp) {
    match op {
        ReplayOp::Extern { kind, args, ret } => {
            out.push(TAG_EXTERN);
            out.push(native_id(*kind));
            for &a in args {
                put_varint(out, a);
            }
            put_varint(out, *ret);
        }
        ReplayOp::Indirect { at, target } => {
            out.push(TAG_INDIRECT);
            put_varint(out, *at);
            put_varint(out, *target);
        }
        ReplayOp::BoundaryCall { at, target } => {
            out.push(TAG_BOUNDARY_CALL);
            put_varint(out, *at);
            put_varint(out, *target);
        }
        ReplayOp::BoundaryRet { at } => {
            out.push(TAG_BOUNDARY_RET);
            put_varint(out, *at);
        }
        ReplayOp::Arrival { at } => {
            out.push(TAG_ARRIVAL);
            put_varint(out, *at);
        }
        ReplayOp::Rep { count, body } => {
            out.push(TAG_REP);
            put_varint(out, *count as u64);
            put_varint(out, body.len() as u64);
            for b in body {
                debug_assert!(!matches!(b, ReplayOp::Rep { .. }), "rep bodies are flat");
                encode_op(out, b);
            }
        }
    }
}

fn decode_op(r: &mut Reader<'_>, allow_rep: bool) -> Result<ReplayOp, String> {
    Ok(match r.byte()? {
        TAG_EXTERN => {
            let kind = native_of(r.byte()?)?;
            let args = [r.varint()?, r.varint()?, r.varint()?];
            let ret = r.varint()?;
            ReplayOp::Extern { kind, args, ret }
        }
        TAG_INDIRECT => ReplayOp::Indirect {
            at: r.varint()?,
            target: r.varint()?,
        },
        TAG_BOUNDARY_CALL => ReplayOp::BoundaryCall {
            at: r.varint()?,
            target: r.varint()?,
        },
        TAG_BOUNDARY_RET => ReplayOp::BoundaryRet { at: r.varint()? },
        TAG_ARRIVAL => ReplayOp::Arrival { at: r.varint()? },
        TAG_REP => {
            if !allow_rep {
                return Err("nested rep".into());
            }
            let count = r.varint()?;
            if count < 2 {
                return Err(format!("rep count {count} < 2"));
            }
            let n = r.varint()? as usize;
            let mut body = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                body.push(decode_op(r, false)?);
            }
            ReplayOp::Rep {
                count: count as u32,
                body,
            }
        }
        other => return Err(format!("unknown op tag {other}")),
    })
}

impl CapturedTrace {
    /// Serializes to the versioned binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.ops.len() * 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        put_varint(&mut out, self.name.len() as u64);
        out.extend_from_slice(self.name.as_bytes());
        let s = &self.summary;
        put_zigzag(&mut out, s.exit);
        for v in [
            s.instructions,
            s.cycles_deci,
            s.calls,
            s.allocs,
            s.frees,
            s.output_len,
            s.output_hash,
        ] {
            put_varint(&mut out, v);
        }
        put_varint(&mut out, self.ops.len() as u64);
        for op in &self.ops {
            encode_op(&mut out, op);
        }
        out
    }

    /// Parses the format produced by [`CapturedTrace::encode`].
    pub fn decode(buf: &[u8]) -> Result<CapturedTrace, String> {
        if buf.len() < 8 || &buf[..4] != MAGIC {
            return Err("bad magic (not an .r2ct trace)".into());
        }
        let version = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
        if version != VERSION {
            return Err(format!(
                "unsupported trace version {version} (have {VERSION})"
            ));
        }
        let mut r = Reader { buf, pos: 8 };
        let name_len = r.varint()? as usize;
        let name_end = r
            .pos
            .checked_add(name_len)
            .filter(|&e| e <= buf.len())
            .ok_or("truncated name")?;
        let name = std::str::from_utf8(&buf[r.pos..name_end])
            .map_err(|_| "name is not utf-8".to_string())?
            .to_string();
        r.pos = name_end;
        let summary = TraceSummary {
            exit: r.zigzag()?,
            instructions: r.varint()?,
            cycles_deci: r.varint()?,
            calls: r.varint()?,
            allocs: r.varint()?,
            frees: r.varint()?,
            output_len: r.varint()?,
            output_hash: r.varint()?,
        };
        let n = r.varint()? as usize;
        let mut ops = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            ops.push(decode_op(&mut r, true)?);
        }
        if r.pos != buf.len() {
            return Err(format!("{} trailing bytes", buf.len() - r.pos));
        }
        Ok(CapturedTrace { name, ops, summary })
    }

    /// The op stream with every [`ReplayOp::Rep`] expanded in place.
    pub fn expanded_ops(&self) -> Vec<ReplayOp> {
        let mut out = Vec::new();
        for op in &self.ops {
            match op {
                ReplayOp::Rep { count, body } => {
                    for _ in 0..*count {
                        out.extend(body.iter().cloned());
                    }
                }
                other => out.push(other.clone()),
            }
        }
        out
    }

    /// Expanded op count (cheap: no materialization).
    pub fn expanded_len(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                ReplayOp::Rep { count, body } => *count as u64 * body.len() as u64,
                _ => 1,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CapturedTrace {
        CapturedTrace {
            name: "sample".into(),
            ops: vec![
                ReplayOp::Extern {
                    kind: NativeKind::Malloc,
                    args: [4096, 0, 0],
                    ret: 0x10_0000_0000,
                },
                ReplayOp::Rep {
                    count: 3,
                    body: vec![
                        ReplayOp::Indirect {
                            at: 0x40_0010,
                            target: 0x40_0100,
                        },
                        ReplayOp::Extern {
                            kind: NativeKind::PrintI64,
                            args: [7, 0, 0],
                            ret: 0,
                        },
                    ],
                },
                ReplayOp::Arrival { at: 123_456 },
                ReplayOp::BoundaryCall { at: 1, target: 2 },
                ReplayOp::BoundaryRet { at: 3 },
            ],
            summary: TraceSummary {
                exit: -5,
                instructions: 1_000_000,
                cycles_deci: 12_345_678,
                calls: 42,
                allocs: 1,
                frees: 1,
                output_len: 3,
                output_hash: output_hash(&[7, 7, 7]),
            },
        }
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = t.encode();
        let back = CapturedTrace::decode(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn expansion() {
        let t = sample();
        assert_eq!(t.expanded_len(), 1 + 6 + 1 + 1 + 1);
        assert_eq!(t.expanded_ops().len() as u64, t.expanded_len());
        assert_eq!(
            t.expanded_ops()[2],
            ReplayOp::Extern {
                kind: NativeKind::PrintI64,
                args: [7, 0, 0],
                ret: 0
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(CapturedTrace::decode(b"").is_err());
        assert!(CapturedTrace::decode(b"NOPE0000").is_err());
        let mut v2 = sample().encode();
        v2[4] = 99; // version
        assert!(CapturedTrace::decode(&v2).unwrap_err().contains("version"));
        let t = sample().encode();
        assert!(
            CapturedTrace::decode(&t[..t.len() - 1]).is_err(),
            "truncation must be detected"
        );
        let mut trailing = sample().encode();
        trailing.push(0);
        assert!(CapturedTrace::decode(&trailing)
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn zigzag_negative_exit() {
        let mut t = sample();
        t.summary.exit = i64::MIN + 1;
        let back = CapturedTrace::decode(&t.encode()).unwrap();
        assert_eq!(back.summary.exit, i64::MIN + 1);
    }

    #[test]
    fn output_hash_distinguishes_order() {
        assert_ne!(output_hash(&[1, 2]), output_hash(&[2, 1]));
        assert_ne!(output_hash(&[]), output_hash(&[0]));
    }
}
