//! The *record* half of the pipeline: run a module under the capture
//! tracer and turn the resulting [`CaptureLog`] into a
//! [`CapturedTrace`].
//!
//! Recording pins a single configuration — build config, machine,
//! instruction budget — because the summary fields (`instructions`,
//! `cycles_deci`) are only meaningful relative to one cost model. The
//! replay determinism suite then re-runs the *captured program* across
//! all machines; the *trace summary* stays tied to the record machine.

use crate::format::{summary_of, CapturedTrace, ReplayOp};
use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::Module;
use r2c_serve::Schedule;
use r2c_vm::trace::{BoundaryEvent, TraceConfig};
use r2c_vm::{ExecStats, ExitStatus, Image, MachineKind, Vm, VmConfig};

/// Configuration a trace is recorded under.
#[derive(Clone, Debug)]
pub struct RecordConfig {
    /// Build configuration for the recorded image.
    pub config: R2cConfig,
    /// Cost model the summary's cycle counts are pinned to.
    pub machine: MachineKind,
    /// Instruction budget for the recorded run.
    pub budget: u64,
}

impl Default for RecordConfig {
    fn default() -> RecordConfig {
        RecordConfig {
            // Capture against the undiversified baseline: the recorded
            // answers must be those of the *program*, not of one R²C
            // variant's layout.
            config: R2cConfig::baseline(0),
            machine: MachineKind::EpycRome,
            budget: 400_000_000,
        }
    }
}

/// A completed recording: the trace plus the raw run results the
/// reducer's oracle compares against.
#[derive(Clone, Debug)]
pub struct Recording {
    /// The captured (uncollapsed) trace.
    pub trace: CapturedTrace,
    /// Stats of the recorded run.
    pub stats: ExecStats,
    /// Guest output of the recorded run.
    pub output: Vec<i64>,
    /// Exit code.
    pub exit: i64,
}

/// Computes the `no_instrument` boundary spans of `module` inside
/// `image`: one `(start, end)` address range per boundary function.
pub fn boundary_spans(module: &Module, image: &Image) -> Vec<(u64, u64)> {
    let mut spans = Vec::new();
    for f in &module.funcs {
        if !f.no_instrument {
            continue;
        }
        if let Some(sym) = image.symbol(&f.name) {
            spans.push((sym.addr, sym.addr + sym.size));
        }
    }
    spans
}

fn convert(log: &[BoundaryEvent]) -> Vec<ReplayOp> {
    log.iter()
        .map(|ev| match *ev {
            BoundaryEvent::Extern { kind, args, ret } => ReplayOp::Extern { kind, args, ret },
            BoundaryEvent::Indirect { at, target } => ReplayOp::Indirect { at, target },
            BoundaryEvent::BoundaryCall { at, target } => ReplayOp::BoundaryCall { at, target },
            BoundaryEvent::BoundaryRet { at } => ReplayOp::BoundaryRet { at },
        })
        .collect()
}

/// Records one execution of `module` under `rc`, failing loudly if the
/// run faults or the tracer dropped any event (capture mode guarantees
/// it never does — this is the belt to that suspender).
pub fn record(module: &Module, name: &str, rc: &RecordConfig) -> Result<Recording, String> {
    record_with_arrivals(module, name, rc, &[])
}

/// [`record`], additionally interleaving request-arrival ops (in
/// simulated guest cycles) from an `r2c-serve` schedule into the trace.
/// Arrivals are merged up front (sorted by cycle) since the guest
/// program consumes the whole request batch; they parameterize the
/// replay's open-loop timing, not its control flow.
pub fn record_with_arrivals(
    module: &Module,
    name: &str,
    rc: &RecordConfig,
    arrival_cycles: &[u64],
) -> Result<Recording, String> {
    let image = R2cCompiler::new(rc.config)
        .build(module)
        .map_err(|e| format!("build failed for {name}: {e:?}"))?;
    let mut vm = Vm::new(&image, VmConfig::new(rc.machine.config()));
    vm.set_insn_budget(rc.budget);
    vm.enable_trace(
        &image,
        TraceConfig {
            capture: true,
            ..TraceConfig::default()
        },
    );
    let spans = boundary_spans(module, &image);
    vm.tracer_mut()
        .expect("trace just enabled")
        .set_capture_boundaries(spans);
    let outcome = vm.run();
    let exit = match outcome.status {
        ExitStatus::Exited(code) => code,
        other => return Err(format!("record of {name} did not exit cleanly: {other:?}")),
    };
    let profile = vm.trace_profile().expect("trace enabled");
    if profile.dropped_events != 0 {
        return Err(format!(
            "capture of {name} dropped {} events — lossless capture violated",
            profile.dropped_events
        ));
    }
    let mut ops: Vec<ReplayOp> = arrival_cycles
        .iter()
        .map(|&at| ReplayOp::Arrival { at })
        .collect();
    ops.sort_by_key(|op| match op {
        ReplayOp::Arrival { at } => *at,
        _ => 0,
    });
    let log = vm.capture_log().expect("capture mode on");
    ops.extend(convert(&log.boundary));
    let output = vm.output.clone();
    let stats = outcome.stats;
    let summary = summary_of(
        exit,
        &stats,
        &output,
        profile.heap.allocs,
        profile.heap.frees,
    );
    Ok(Recording {
        trace: CapturedTrace {
            name: name.to_string(),
            ops,
            summary,
        },
        stats,
        output,
        exit,
    })
}

/// Arrival cycles of a serve schedule (the record-side source for
/// [`ReplayOp::Arrival`] ops).
pub fn schedule_arrivals(schedule: &Schedule) -> Vec<u64> {
    let mut at: Vec<u64> = schedule.events.iter().map(|e| e.at).collect();
    at.sort_unstable();
    at
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_ir::parse_module;

    fn tiny() -> Module {
        parse_module(
            "func @main(0) {\nentry:\n  %0 = const 8\n  %1 = extern malloc(%0)\n  \
             %2 = const 41\n  store %1 + 0, %2\n  %3 = load %1 + 0\n  %4 = const 1\n  \
             %5 = add %3, %4\n  %6 = extern print(%5)\n  \
             %7 = extern free(%1)\n  ret %5\n}\n",
        )
        .unwrap()
    }

    #[test]
    fn record_captures_externs_and_summary() {
        let m = tiny();
        let rec = record(&m, "tiny", &RecordConfig::default()).unwrap();
        assert_eq!(rec.exit, 42);
        assert_eq!(rec.output, vec![42]);
        assert_eq!(rec.trace.summary.allocs, 1);
        assert_eq!(rec.trace.summary.frees, 1);
        assert_eq!(rec.trace.summary.output_len, 1);
        let externs: Vec<_> = rec
            .trace
            .ops
            .iter()
            .filter(|op| matches!(op, ReplayOp::Extern { .. }))
            .collect();
        // malloc + print + free at minimum.
        assert!(externs.len() >= 3, "externs: {externs:?}");
    }

    #[test]
    fn record_is_deterministic() {
        let m = tiny();
        let rc = RecordConfig::default();
        let a = record(&m, "tiny", &rc).unwrap();
        let b = record(&m, "tiny", &rc).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn arrivals_are_sorted_into_trace() {
        let m = tiny();
        let rec =
            record_with_arrivals(&m, "tiny", &RecordConfig::default(), &[30, 10, 20]).unwrap();
        let arrivals: Vec<u64> = rec
            .trace
            .ops
            .iter()
            .filter_map(|op| match op {
                ReplayOp::Arrival { at } => Some(*at),
                _ => None,
            })
            .collect();
        assert_eq!(arrivals, vec![10, 20, 30]);
    }
}
