//! Source programs for the captured-workload archetypes.
//!
//! Each builder produces a deterministic module that exercises an
//! environment-boundary pattern the SPEC-profiled synthetic suite does
//! not cover: indirect-dispatch interpretation, recursive-descent
//! parsing, page-chain storage management, and allocator churn. The
//! builders take an *environment* — a vector of opaque payloads,
//! normally harvested from an `r2c-serve` request schedule — so the
//! capture binary can mint fresh workload instances from fresh
//! schedules.
//!
//! Ground rules shared by every source (they are what make the
//! record-reduce oracle sound):
//!
//! * fully deterministic — no reads of anything but the baked-in
//!   environment;
//! * no pointer-valued data in globals or output (pointer values
//!   legitimately differ between the reference interpreter and the
//!   VM); code pointers live only in heap memory;
//! * one `no_instrument` helper on a hot-ish path, so boundary
//!   call/return events appear in every capture;
//! * deliberate dead weight (an unused helper and an unused global),
//!   so the delta-debugging reduction provably earns its keep.

use r2c_ir::{BinOp, CmpOp, ExternFn, GlobalInit, Module, ModuleBuilder};
use r2c_serve::{Op, Schedule};

/// The captured workload archetypes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Archetype {
    /// Bytecode interpreter-in-interpreter: handler table dispatched
    /// through indirect calls, accumulator state on the heap.
    Interp,
    /// JSON-like token-stream parsing by recursive descent with depth
    /// tracking.
    Json,
    /// Database-page engine: hash-bucketed chains of fixed-capacity
    /// heap pages with inserts, lookups and teardown.
    DbPage,
    /// Allocator churn: a slot table of interleaved `malloc`,
    /// `memalign` and `free` with size classes from the environment.
    Churn,
}

/// All archetypes, in registration order.
pub const ALL: &[Archetype] = &[
    Archetype::Interp,
    Archetype::Json,
    Archetype::DbPage,
    Archetype::Churn,
];

impl Archetype {
    /// Stable name (workload name, file stem).
    pub fn name(self) -> &'static str {
        match self {
            Archetype::Interp => "cap-interp",
            Archetype::Json => "cap-json",
            Archetype::DbPage => "cap-dbpage",
            Archetype::Churn => "cap-churn",
        }
    }
}

/// Extracts the request payloads of a schedule (probe events carry no
/// payload and are skipped) — the environment a source is built from.
pub fn env_from_schedule(schedule: &Schedule) -> Vec<u64> {
    schedule
        .events
        .iter()
        .filter_map(|e| match e.op {
            Op::Request { payload } => Some(payload),
            Op::Probe => None,
        })
        .collect()
}

/// The default environment of an archetype: payloads of a fixed-seed
/// request-only schedule, one distinct seed per archetype.
pub fn default_env(a: Archetype) -> Vec<u64> {
    let seed = match a {
        Archetype::Interp => 11,
        Archetype::Json => 23,
        Archetype::DbPage => 37,
        Archetype::Churn => 53,
    };
    env_from_schedule(&Schedule::generate(seed, 4, 48, 0))
}

/// Builds the source module of `a` for environment `env`.
pub fn source(a: Archetype, env: &[u64]) -> Module {
    assert!(!env.is_empty(), "source needs a non-empty environment");
    match a {
        Archetype::Interp => interp_source(env),
        Archetype::Json => json_source(env),
        Archetype::DbPage => dbpage_source(env),
        Archetype::Churn => churn_source(env),
    }
}

/// Adds the shared `mix` helper (a `no_instrument` 64-bit mixer, so
/// captures see boundary call/return traffic) and the dead weight the
/// reducer is expected to strip.
fn add_common(mb: &mut ModuleBuilder, tag: &str) -> r2c_ir::FuncId {
    mb.global(&format!("{tag}_scratch_unused"), GlobalInit::Zero(64), 8);
    let mut f = mb.function(&format!("{tag}_unused"), 1);
    let p = f.param(0);
    let k = f.iconst(3);
    let m = f.bin(BinOp::Mul, p, k);
    f.ret(Some(m));
    f.finish();

    let mut f = mb.function("mix", 2);
    let id = f.id();
    f.no_instrument();
    let a = f.param(0);
    let b = f.param(1);
    let k = f.iconst(0x9E37_79B9_7F4A_7C15_u64 as i64);
    let x = f.bin(BinOp::Xor, a, b);
    let m = f.bin(BinOp::Mul, x, k);
    let s = f.iconst(29);
    let r = f.bin(BinOp::Shr, m, s);
    let out = f.bin(BinOp::Xor, m, r);
    f.ret(Some(out));
    f.finish();
    id
}

// ---------------------------------------------------------------------
// cap-interp: interpreter-in-interpreter
// ---------------------------------------------------------------------

/// Outer rounds the guest interpreter re-runs its bytecode.
const INTERP_ROUNDS: i64 = 6;

fn interp_source(env: &[u64]) -> Module {
    let mut mb = ModuleBuilder::new("cap-interp");

    // Bytecode: [op, imm] pairs; op 0=add 1=mul 2=xor 3=print 4=halt.
    let mut code: Vec<i64> = Vec::new();
    for (i, &e) in env.iter().enumerate() {
        code.push((e % 3) as i64);
        code.push(((e % 251) + 1) as i64);
        if i % 8 == 7 {
            code.push(3);
            code.push(0);
        }
    }
    code.push(4);
    code.push(0);
    let prog = mb.global("prog", GlobalInit::Words(code), 8);
    let acc_out = mb.global("acc_out", GlobalInit::Zero(8), 8);
    let mix = add_common(&mut mb, "interp");

    // Handlers: fn(state, imm) -> nonzero to halt.
    let mut handler = |name: &str, op: Option<BinOp>, print: bool, halt: i64| {
        let mut f = mb.function(name, 2);
        let id = f.id();
        let st = f.param(0);
        let imm = f.param(1);
        let acc = f.load(st, 0);
        if let Some(op) = op {
            let n = f.bin(op, acc, imm);
            f.store(st, 0, n);
        }
        if print {
            f.call_extern(ExternFn::PrintI64, &[acc]);
        }
        let r = f.iconst(halt);
        f.ret(Some(r));
        f.finish();
        id
    };
    let h_add = handler("op_add", Some(BinOp::Add), false, 0);
    let h_mul = handler("op_mul", Some(BinOp::Mul), false, 0);
    let h_xor = handler("op_xor", Some(BinOp::Xor), false, 0);
    let h_print = handler("op_print", None, true, 0);
    let h_halt = handler("op_halt", None, false, 1);

    let mut f = mb.function("main", 0);
    let r_slot = f.alloca(8, 8);
    let pc_slot = f.alloca(8, 8);
    let tsize = f.iconst(40);
    let table = f.call_extern(ExternFn::Malloc, &[tsize]);
    for (i, h) in [h_add, h_mul, h_xor, h_print, h_halt]
        .into_iter()
        .enumerate()
    {
        let fa = f.func_addr(h);
        f.store(table, (i * 8) as i32, fa);
    }
    let ssz = f.iconst(8);
    let state = f.call_extern(ExternFn::Malloc, &[ssz]);
    let zero = f.iconst(0);
    f.store(state, 0, zero);
    f.store(r_slot, 0, zero);

    let outer = f.new_block("outer");
    let inner = f.new_block("inner");
    let inner_done = f.new_block("inner_done");
    let done = f.new_block("done");
    f.br(outer);

    f.switch_to(outer);
    let z = f.iconst(0);
    f.store(pc_slot, 0, z);
    f.br(inner);

    f.switch_to(inner);
    let pc = f.load(pc_slot, 0);
    let pbase = f.global_addr(prog);
    let cell = f.ptr_add(pbase, Some(pc), 8, 0);
    let op = f.load(cell, 0);
    let imm = f.load(cell, 8);
    let hcell = f.ptr_add(table, Some(op), 8, 0);
    let h = f.load(hcell, 0);
    let halt = f.call_ind(h, &[state, imm]);
    let two = f.iconst(2);
    let npc = f.bin(BinOp::Add, pc, two);
    f.store(pc_slot, 0, npc);
    let z2 = f.iconst(0);
    let stop = f.cmp(CmpOp::Ne, halt, z2);
    f.cond_br(stop, inner_done, inner);

    f.switch_to(inner_done);
    let r = f.load(r_slot, 0);
    let acc = f.load(state, 0);
    let mixed = f.call(mix, &[acc, r]);
    let mask = f.iconst(0xff);
    let mm = f.bin(BinOp::And, mixed, mask);
    let na = f.bin(BinOp::Xor, acc, mm);
    f.store(state, 0, na);
    let one = f.iconst(1);
    let nr = f.bin(BinOp::Add, r, one);
    f.store(r_slot, 0, nr);
    let rounds = f.iconst(INTERP_ROUNDS);
    let again = f.cmp(CmpOp::Lt, nr, rounds);
    f.cond_br(again, outer, done);

    f.switch_to(done);
    let fin = f.load(state, 0);
    let go = f.global_addr(acc_out);
    f.store(go, 0, fin);
    f.call_extern(ExternFn::PrintI64, &[fin]);
    f.call_extern(ExternFn::Free, &[state]);
    f.call_extern(ExternFn::Free, &[table]);
    let emask = f.iconst(0xffff);
    let exitv = f.bin(BinOp::And, fin, emask);
    f.ret(Some(exitv));
    f.finish();

    mb.finish()
}

// ---------------------------------------------------------------------
// cap-json: recursive-descent token-stream parsing
// ---------------------------------------------------------------------

/// Parse rounds over the document.
const JSON_ROUNDS: i64 = 4;

const TOK_OBJ_OPEN: i64 = 1;
const TOK_OBJ_CLOSE: i64 = 2;
const TOK_ARR_OPEN: i64 = 3;
const TOK_ARR_CLOSE: i64 = 4;
const TOK_NUM: i64 = 10; // TOK_NUM + v encodes the number v

fn json_tokens(env: &[u64]) -> Vec<i64> {
    let mut t = vec![TOK_OBJ_OPEN];
    for &e in env {
        match e % 4 {
            0 => t.push(TOK_NUM + (e % 90) as i64),
            1 => t.extend([
                TOK_ARR_OPEN,
                TOK_NUM + (e % 50) as i64,
                TOK_NUM + ((e / 7) % 50) as i64,
                TOK_ARR_CLOSE,
            ]),
            2 => t.extend([TOK_OBJ_OPEN, TOK_NUM + (e % 30) as i64, TOK_OBJ_CLOSE]),
            _ => t.extend([
                TOK_ARR_OPEN,
                TOK_OBJ_OPEN,
                TOK_NUM + (e % 20) as i64,
                TOK_OBJ_CLOSE,
                TOK_ARR_CLOSE,
            ]),
        }
    }
    t.push(TOK_OBJ_CLOSE);
    t
}

fn json_source(env: &[u64]) -> Module {
    let mut mb = ModuleBuilder::new("cap-json");
    let doc = mb.global("doc", GlobalInit::Words(json_tokens(env)), 8);
    // stats[0] = values parsed, stats[8] = max depth seen.
    let stats = mb.global("stats", GlobalInit::Zero(16), 8);
    let mix = add_common(&mut mb, "json");
    let parse = mb.declare_function("parse_value", 2);

    // parse_value(pos_ptr, depth) -> subtree checksum.
    let mut f = mb.function("parse_value", 2);
    let sum_slot = f.alloca(8, 8);
    let pos_ptr = f.param(0);
    let depth = f.param(1);
    let zero = f.iconst(0);
    f.store(sum_slot, 0, zero);
    // tok = doc[*pos]; *pos += 1
    let pos = f.load(pos_ptr, 0);
    let dbase = f.global_addr(doc);
    let cell = f.ptr_add(dbase, Some(pos), 8, 0);
    let tok = f.load(cell, 0);
    let one = f.iconst(1);
    let npos = f.bin(BinOp::Add, pos, one);
    f.store(pos_ptr, 0, npos);

    let num = f.new_block("num");
    let composite = f.new_block("composite");
    let obj = f.new_block("obj");
    let arr = f.new_block("arr");
    let obj_loop = f.new_block("obj_loop");
    let obj_member = f.new_block("obj_member");
    let arr_loop = f.new_block("arr_loop");
    let arr_elem = f.new_block("arr_elem");
    let close = f.new_block("close");
    let sbase = f.global_addr(stats);
    let tnum = f.iconst(TOK_NUM);
    let is_num = f.cmp(CmpOp::Ge, tok, tnum);
    f.cond_br(is_num, num, composite);

    f.switch_to(num);
    let c = f.load(sbase, 0);
    let c1 = f.bin(BinOp::Add, c, one);
    f.store(sbase, 0, c1);
    let v = f.bin(BinOp::Sub, tok, tnum);
    f.ret(Some(v));

    f.switch_to(composite);
    // new depth = depth + 1; stats[8] = max(stats[8], new depth)
    let nd = f.bin(BinOp::Add, depth, one);
    let cur = f.load(sbase, 8);
    let deeper = f.cmp(CmpOp::Gt, nd, cur);
    let bump = f.new_block("bump");
    let dispatch = f.new_block("dispatch");
    f.cond_br(deeper, bump, dispatch);
    f.switch_to(bump);
    f.store(sbase, 8, nd);
    f.br(dispatch);
    f.switch_to(dispatch);
    let tobj = f.iconst(TOK_OBJ_OPEN);
    let is_obj = f.cmp(CmpOp::Eq, tok, tobj);
    f.cond_br(is_obj, obj, arr);

    // Object: sum member checksums until the close token.
    f.switch_to(obj);
    f.br(obj_loop);
    f.switch_to(obj_loop);
    let p = f.load(pos_ptr, 0);
    let pc = f.ptr_add(dbase, Some(p), 8, 0);
    let peek = f.load(pc, 0);
    let tclose = f.iconst(TOK_OBJ_CLOSE);
    let at_close = f.cmp(CmpOp::Eq, peek, tclose);
    f.cond_br(at_close, close, obj_member);
    f.switch_to(obj_member);
    let sub = f.call(parse, &[pos_ptr, nd]);
    let s = f.load(sum_slot, 0);
    let ns = f.bin(BinOp::Add, s, sub);
    f.store(sum_slot, 0, ns);
    f.br(obj_loop);

    // Array: like object, but weight elements by position parity
    // (distinct fold so reduced traces can't confuse the two).
    f.switch_to(arr);
    f.br(arr_loop);
    f.switch_to(arr_loop);
    let p2 = f.load(pos_ptr, 0);
    let pc2 = f.ptr_add(dbase, Some(p2), 8, 0);
    let peek2 = f.load(pc2, 0);
    let taclose = f.iconst(TOK_ARR_CLOSE);
    let at_aclose = f.cmp(CmpOp::Eq, peek2, taclose);
    f.cond_br(at_aclose, close, arr_elem);
    f.switch_to(arr_elem);
    let sub2 = f.call(parse, &[pos_ptr, nd]);
    let s2 = f.load(sum_slot, 0);
    let three = f.iconst(3);
    let w = f.bin(BinOp::Mul, s2, three);
    let ns2 = f.bin(BinOp::Add, w, sub2);
    f.store(sum_slot, 0, ns2);
    f.br(arr_loop);

    // Shared close: consume the close token, fold in the depth.
    f.switch_to(close);
    let p3 = f.load(pos_ptr, 0);
    let p3n = f.bin(BinOp::Add, p3, one);
    f.store(pos_ptr, 0, p3n);
    let s3 = f.load(sum_slot, 0);
    let folded = f.call(mix, &[s3, nd]);
    let fmask = f.iconst(0xffff_ffff);
    let out = f.bin(BinOp::And, folded, fmask);
    f.ret(Some(out));
    f.finish();

    let mut f = mb.function("main", 0);
    let pos_slot = f.alloca(8, 8);
    let total_slot = f.alloca(8, 8);
    let r_slot = f.alloca(8, 8);
    let zero = f.iconst(0);
    f.store(total_slot, 0, zero);
    f.store(r_slot, 0, zero);
    let round = f.new_block("round");
    let done = f.new_block("done");
    f.br(round);
    f.switch_to(round);
    let z = f.iconst(0);
    f.store(pos_slot, 0, z);
    let cs = f.call(parse, &[pos_slot, z]);
    let t = f.load(total_slot, 0);
    let r = f.load(r_slot, 0);
    let rcs = f.bin(BinOp::Add, cs, r);
    // t*3 + cs + r: deliberately not an xor fold — identical per-round
    // checksums must not cancel, or the exit degenerates to 0 and the
    // reducer is free to strip the checksum path entirely.
    let three = f.iconst(3);
    let t3 = f.bin(BinOp::Mul, t, three);
    let nt = f.bin(BinOp::Add, t3, rcs);
    f.store(total_slot, 0, nt);
    let one = f.iconst(1);
    let nr = f.bin(BinOp::Add, r, one);
    f.store(r_slot, 0, nr);
    let rounds = f.iconst(JSON_ROUNDS);
    let again = f.cmp(CmpOp::Lt, nr, rounds);
    f.cond_br(again, round, done);
    f.switch_to(done);
    let total = f.load(total_slot, 0);
    f.call_extern(ExternFn::PrintI64, &[total]);
    let sbase = f.global_addr(stats);
    let nvals = f.load(sbase, 0);
    f.call_extern(ExternFn::PrintI64, &[nvals]);
    let maxd = f.load(sbase, 8);
    f.call_extern(ExternFn::PrintI64, &[maxd]);
    let emask = f.iconst(0xffff);
    let exitv = f.bin(BinOp::And, total, emask);
    f.ret(Some(exitv));
    f.finish();

    mb.finish()
}

// ---------------------------------------------------------------------
// cap-dbpage: hash-bucketed page-chain storage engine
// ---------------------------------------------------------------------

const DB_BUCKETS: i64 = 8;
/// Keys per page; page layout: [next, count, key0..key5] = 64 bytes.
const DB_PAGE_CAP: i64 = 6;

fn db_keys(env: &[u64]) -> Vec<i64> {
    let mut keys = Vec::with_capacity(env.len() * 4);
    for &e in env {
        for i in 0..4u64 {
            keys.push(((e * 7 + i * 13) % 10_007) as i64);
        }
    }
    keys
}

fn dbpage_source(env: &[u64]) -> Module {
    let mut mb = ModuleBuilder::new("cap-dbpage");
    let keys = db_keys(env);
    let nkeys = keys.len() as i64;
    let keys_g = mb.global("keys", GlobalInit::Words(keys), 8);
    let mix = add_common(&mut mb, "db");

    // alloc_page() -> zeroed page.
    let mut f = mb.function("alloc_page", 0);
    let alloc_page = f.id();
    let sz = f.iconst(64);
    let pg = f.call_extern(ExternFn::Malloc, &[sz]);
    let zero = f.iconst(0);
    f.store(pg, 0, zero); // next
    f.store(pg, 8, zero); // count
    f.ret(Some(pg));
    f.finish();

    // page_insert(dir, key): append into the key's bucket chain,
    // growing the chain by one page when the tail is full.
    let mut f = mb.function("page_insert", 2);
    let page_insert = f.id();
    let p_slot = f.alloca(8, 8);
    let dir = f.param(0);
    let key = f.param(1);
    let bmask = f.iconst(DB_BUCKETS - 1);
    let bucket = f.bin(BinOp::And, key, bmask);
    let bcell = f.ptr_add(dir, Some(bucket), 8, 0);
    let head = f.load(bcell, 0);
    let zero = f.iconst(0);
    let empty = f.cmp(CmpOp::Eq, head, zero);
    let new_head = f.new_block("new_head");
    let walk_init = f.new_block("walk_init");
    let walk = f.new_block("walk");
    let advance = f.new_block("advance");
    let at_tail = f.new_block("at_tail");
    let append = f.new_block("append");
    let grow = f.new_block("grow");
    f.cond_br(empty, new_head, walk_init);

    f.switch_to(new_head);
    let pg = f.call(alloc_page, &[]);
    f.store(bcell, 0, pg);
    f.store(p_slot, 0, pg);
    f.br(at_tail);

    f.switch_to(walk_init);
    f.store(p_slot, 0, head);
    f.br(walk);
    f.switch_to(walk);
    let p = f.load(p_slot, 0);
    let next = f.load(p, 0);
    let tail = f.cmp(CmpOp::Eq, next, zero);
    f.cond_br(tail, at_tail, advance);
    f.switch_to(advance);
    f.store(p_slot, 0, next);
    f.br(walk);

    f.switch_to(at_tail);
    let tp = f.load(p_slot, 0);
    let n = f.load(tp, 8);
    let cap = f.iconst(DB_PAGE_CAP);
    let full = f.cmp(CmpOp::Ge, n, cap);
    f.cond_br(full, grow, append);

    f.switch_to(grow);
    let fresh = f.call(alloc_page, &[]);
    let tp2 = f.load(p_slot, 0);
    f.store(tp2, 0, fresh);
    f.store(p_slot, 0, fresh);
    f.br(append);

    f.switch_to(append);
    let ap = f.load(p_slot, 0);
    let an = f.load(ap, 8);
    let kcell = f.ptr_add(ap, Some(an), 8, 16);
    f.store(kcell, 0, key);
    let one = f.iconst(1);
    let an1 = f.bin(BinOp::Add, an, one);
    f.store(ap, 8, an1);
    f.ret(None);
    f.finish();

    // page_lookup(dir, key) -> 1 if present.
    let mut f = mb.function("page_lookup", 2);
    let page_lookup = f.id();
    let p_slot = f.alloca(8, 8);
    let i_slot = f.alloca(8, 8);
    let dir = f.param(0);
    let key = f.param(1);
    let bmask = f.iconst(DB_BUCKETS - 1);
    let bucket = f.bin(BinOp::And, key, bmask);
    let bcell = f.ptr_add(dir, Some(bucket), 8, 0);
    let head = f.load(bcell, 0);
    f.store(p_slot, 0, head);
    let chain = f.new_block("chain");
    let scan_init = f.new_block("scan_init");
    let scan = f.new_block("scan");
    let check = f.new_block("check");
    let scan_next = f.new_block("scan_next");
    let next_page = f.new_block("next_page");
    let hit = f.new_block("hit");
    let miss = f.new_block("miss");
    f.br(chain);

    f.switch_to(chain);
    let p = f.load(p_slot, 0);
    let zero = f.iconst(0);
    let end = f.cmp(CmpOp::Eq, p, zero);
    f.cond_br(end, miss, scan_init);
    f.switch_to(scan_init);
    let z = f.iconst(0);
    f.store(i_slot, 0, z);
    f.br(scan);
    f.switch_to(scan);
    let i = f.load(i_slot, 0);
    let p2 = f.load(p_slot, 0);
    let n = f.load(p2, 8);
    let in_page = f.cmp(CmpOp::Lt, i, n);
    f.cond_br(in_page, check, next_page);
    f.switch_to(check);
    let kcell = f.ptr_add(p2, Some(i), 8, 16);
    let k = f.load(kcell, 0);
    let eq = f.cmp(CmpOp::Eq, k, key);
    f.cond_br(eq, hit, scan_next);
    f.switch_to(scan_next);
    let one = f.iconst(1);
    let i1 = f.bin(BinOp::Add, i, one);
    f.store(i_slot, 0, i1);
    f.br(scan);
    f.switch_to(next_page);
    let nx = f.load(p2, 0);
    f.store(p_slot, 0, nx);
    f.br(chain);
    f.switch_to(hit);
    let one2 = f.iconst(1);
    f.ret(Some(one2));
    f.switch_to(miss);
    let z2 = f.iconst(0);
    f.ret(Some(z2));
    f.finish();

    // free_chain(head) -> pages freed.
    let mut f = mb.function("free_chain", 1);
    let free_chain = f.id();
    let p_slot = f.alloca(8, 8);
    let c_slot = f.alloca(8, 8);
    let head = f.param(0);
    let zero = f.iconst(0);
    f.store(p_slot, 0, head);
    f.store(c_slot, 0, zero);
    let step = f.new_block("step");
    let body = f.new_block("body");
    let done = f.new_block("done");
    f.br(step);
    f.switch_to(step);
    let p = f.load(p_slot, 0);
    let end = f.cmp(CmpOp::Eq, p, zero);
    f.cond_br(end, done, body);
    f.switch_to(body);
    let nx = f.load(p, 0);
    f.call_extern(ExternFn::Free, &[p]);
    let c = f.load(c_slot, 0);
    let one = f.iconst(1);
    let c1 = f.bin(BinOp::Add, c, one);
    f.store(c_slot, 0, c1);
    f.store(p_slot, 0, nx);
    f.br(step);
    f.switch_to(done);
    let c2 = f.load(c_slot, 0);
    f.ret(Some(c2));
    f.finish();

    let mut f = mb.function("main", 0);
    let i_slot = f.alloca(8, 8);
    let hits_slot = f.alloca(8, 8);
    let ghost_slot = f.alloca(8, 8);
    let freed_slot = f.alloca(8, 8);
    let align = f.iconst(64);
    let dsz = f.iconst(DB_BUCKETS * 8);
    let dir = f.call_extern(ExternFn::Memalign, &[align, dsz]);
    let zero = f.iconst(0);
    // Zero the bucket heads.
    f.store(i_slot, 0, zero);
    let zinit = f.new_block("zinit");
    let zdone = f.new_block("zdone");
    f.br(zinit);
    f.switch_to(zinit);
    let i = f.load(i_slot, 0);
    let cell = f.ptr_add(dir, Some(i), 8, 0);
    let z = f.iconst(0);
    f.store(cell, 0, z);
    let one = f.iconst(1);
    let i1 = f.bin(BinOp::Add, i, one);
    f.store(i_slot, 0, i1);
    let nb = f.iconst(DB_BUCKETS);
    let more = f.cmp(CmpOp::Lt, i1, nb);
    f.cond_br(more, zinit, zdone);

    f.switch_to(zdone);
    f.store(i_slot, 0, zero);
    f.store(hits_slot, 0, zero);
    f.store(ghost_slot, 0, zero);
    let ins = f.new_block("ins");
    let ins_done = f.new_block("ins_done");
    f.br(ins);
    f.switch_to(ins);
    let i2 = f.load(i_slot, 0);
    let kb = f.global_addr(keys_g);
    let kc = f.ptr_add(kb, Some(i2), 8, 0);
    let k = f.load(kc, 0);
    f.call(page_insert, &[dir, k]);
    let one2 = f.iconst(1);
    let i3 = f.bin(BinOp::Add, i2, one2);
    f.store(i_slot, 0, i3);
    let nk = f.iconst(nkeys);
    let more2 = f.cmp(CmpOp::Lt, i3, nk);
    f.cond_br(more2, ins, ins_done);

    f.switch_to(ins_done);
    f.store(i_slot, 0, zero);
    let look = f.new_block("look");
    let look_done = f.new_block("look_done");
    f.br(look);
    f.switch_to(look);
    let i4 = f.load(i_slot, 0);
    let kb2 = f.global_addr(keys_g);
    let kc2 = f.ptr_add(kb2, Some(i4), 8, 0);
    let k2 = f.load(kc2, 0);
    let h = f.call(page_lookup, &[dir, k2]);
    let hs = f.load(hits_slot, 0);
    let hs1 = f.bin(BinOp::Add, hs, h);
    f.store(hits_slot, 0, hs1);
    // A guaranteed miss: keys are < 10_007, ghosts start at 1_000_003.
    let ghost_base = f.iconst(1_000_003);
    let gk = f.bin(BinOp::Add, k2, ghost_base);
    let g = f.call(page_lookup, &[dir, gk]);
    let gs = f.load(ghost_slot, 0);
    let gs1 = f.bin(BinOp::Add, gs, g);
    f.store(ghost_slot, 0, gs1);
    let one3 = f.iconst(1);
    let i5 = f.bin(BinOp::Add, i4, one3);
    f.store(i_slot, 0, i5);
    let nk2 = f.iconst(nkeys);
    let more3 = f.cmp(CmpOp::Lt, i5, nk2);
    f.cond_br(more3, look, look_done);

    f.switch_to(look_done);
    f.store(i_slot, 0, zero);
    f.store(freed_slot, 0, zero);
    let teardown = f.new_block("teardown");
    let report = f.new_block("report");
    f.br(teardown);
    f.switch_to(teardown);
    let b = f.load(i_slot, 0);
    let bc = f.ptr_add(dir, Some(b), 8, 0);
    let headp = f.load(bc, 0);
    let fr = f.call(free_chain, &[headp]);
    let ft = f.load(freed_slot, 0);
    let ft1 = f.bin(BinOp::Add, ft, fr);
    f.store(freed_slot, 0, ft1);
    let one4 = f.iconst(1);
    let b1 = f.bin(BinOp::Add, b, one4);
    f.store(i_slot, 0, b1);
    let nb2 = f.iconst(DB_BUCKETS);
    let more4 = f.cmp(CmpOp::Lt, b1, nb2);
    f.cond_br(more4, teardown, report);

    f.switch_to(report);
    f.call_extern(ExternFn::Free, &[dir]);
    let hits = f.load(hits_slot, 0);
    let ghosts = f.load(ghost_slot, 0);
    let freed = f.load(freed_slot, 0);
    f.call_extern(ExternFn::PrintI64, &[hits]);
    f.call_extern(ExternFn::PrintI64, &[ghosts]);
    f.call_extern(ExternFn::PrintI64, &[freed]);
    let sig = f.call(mix, &[hits, freed]);
    let emask = f.iconst(0xffff);
    let exitv = f.bin(BinOp::And, sig, emask);
    f.ret(Some(exitv));
    f.finish();

    mb.finish()
}

// ---------------------------------------------------------------------
// cap-churn: allocator churn over a slot table
// ---------------------------------------------------------------------

const CHURN_SLOTS: i64 = 16;
/// Churn steps per environment entry.
const CHURN_STEPS_PER_ENTRY: usize = 6;

fn churn_source(env: &[u64]) -> Module {
    let mut mb = ModuleBuilder::new("cap-churn");
    let iters = (env.len() * CHURN_STEPS_PER_ENTRY) as i64;
    let sizes: Vec<i64> = env.iter().map(|&e| (e % 97) as i64).collect();
    let nsizes = sizes.len() as i64;
    let sizes_g = mb.global("sizes", GlobalInit::Words(sizes), 8);
    let mix = add_common(&mut mb, "churn");

    let mut f = mb.function("main", 0);
    let i_slot = f.alloca(8, 8);
    let alloc_slot = f.alloca(8, 8);
    let free_slot = f.alloca(8, 8);
    let tsz = f.iconst(CHURN_SLOTS * 8);
    let slots = f.call_extern(ExternFn::Malloc, &[tsz]);
    let zero = f.iconst(0);
    f.store(i_slot, 0, zero);
    f.store(alloc_slot, 0, zero);
    f.store(free_slot, 0, zero);

    // Zero the slot table.
    let zinit = f.new_block("zinit");
    let churn = f.new_block("churn");
    f.br(zinit);
    f.switch_to(zinit);
    let i = f.load(i_slot, 0);
    let cell = f.ptr_add(slots, Some(i), 8, 0);
    let z = f.iconst(0);
    f.store(cell, 0, z);
    let one = f.iconst(1);
    let i1 = f.bin(BinOp::Add, i, one);
    f.store(i_slot, 0, i1);
    let ns = f.iconst(CHURN_SLOTS);
    let more = f.cmp(CmpOp::Lt, i1, ns);
    let reset = f.new_block("reset");
    f.cond_br(more, zinit, reset);
    f.switch_to(reset);
    f.store(i_slot, 0, zero);
    f.br(churn);

    // Main churn loop.
    f.switch_to(churn);
    let step_free = f.new_block("step_free");
    let step_alloc = f.new_block("step_alloc");
    let use_memalign = f.new_block("use_memalign");
    let use_malloc = f.new_block("use_malloc");
    let step_store = f.new_block("step_store");
    let step_next = f.new_block("step_next");
    let drain_setup = f.new_block("drain_setup");
    let i2 = f.load(i_slot, 0);
    let nsz = f.iconst(nsizes);
    let ei = f.bin(BinOp::Rem, i2, nsz);
    let sb = f.global_addr(sizes_g);
    let sc = f.ptr_add(sb, Some(ei), 8, 0);
    let e = f.load(sc, 0);
    let seven = f.iconst(7);
    let i7 = f.bin(BinOp::Mul, i2, seven);
    let ie = f.bin(BinOp::Add, i7, e);
    let smask = f.iconst(CHURN_SLOTS - 1);
    let idx = f.bin(BinOp::And, ie, smask);
    let scell = f.ptr_add(slots, Some(idx), 8, 0);
    let p = f.load(scell, 0);
    let z2 = f.iconst(0);
    let occupied = f.cmp(CmpOp::Ne, p, z2);
    f.cond_br(occupied, step_free, step_alloc);

    f.switch_to(step_free);
    f.call_extern(ExternFn::Free, &[p]);
    f.store(scell, 0, z2);
    let fc = f.load(free_slot, 0);
    let one2 = f.iconst(1);
    let fc1 = f.bin(BinOp::Add, fc, one2);
    f.store(free_slot, 0, fc1);
    f.br(step_next);

    f.switch_to(step_alloc);
    // size class: 16 + (e % 7) * 24
    let sevenb = f.iconst(7);
    let cls = f.bin(BinOp::Rem, e, sevenb);
    let stride = f.iconst(24);
    let spread = f.bin(BinOp::Mul, cls, stride);
    let base = f.iconst(16);
    let size = f.bin(BinOp::Add, base, spread);
    let five = f.iconst(5);
    let phase = f.bin(BinOp::Rem, i2, five);
    let aligned = f.cmp(CmpOp::Eq, phase, z2);
    f.cond_br(aligned, use_memalign, use_malloc);
    f.switch_to(use_memalign);
    let al = f.iconst(64);
    let q1 = f.call_extern(ExternFn::Memalign, &[al, size]);
    f.store(scell, 0, q1);
    f.br(step_store);
    f.switch_to(use_malloc);
    let q2 = f.call_extern(ExternFn::Malloc, &[size]);
    f.store(scell, 0, q2);
    f.br(step_store);
    f.switch_to(step_store);
    let q = f.load(scell, 0);
    f.store(q, 0, i2); // touch the block
    let ac = f.load(alloc_slot, 0);
    let one3 = f.iconst(1);
    let ac1 = f.bin(BinOp::Add, ac, one3);
    f.store(alloc_slot, 0, ac1);
    f.br(step_next);

    f.switch_to(step_next);
    let i3 = f.load(i_slot, 0);
    let one4 = f.iconst(1);
    let i4 = f.bin(BinOp::Add, i3, one4);
    f.store(i_slot, 0, i4);
    let lim = f.iconst(iters);
    let more2 = f.cmp(CmpOp::Lt, i4, lim);
    f.cond_br(more2, churn, drain_setup);

    // Drain: free everything still live.
    f.switch_to(drain_setup);
    let drain = f.new_block("drain");
    let drain_free = f.new_block("drain_free");
    let drain_next = f.new_block("drain_next");
    let report = f.new_block("report");
    f.store(i_slot, 0, zero);
    f.br(drain);
    f.switch_to(drain);
    let d = f.load(i_slot, 0);
    let dc = f.ptr_add(slots, Some(d), 8, 0);
    let dp = f.load(dc, 0);
    let z3 = f.iconst(0);
    let live = f.cmp(CmpOp::Ne, dp, z3);
    f.cond_br(live, drain_free, drain_next);
    f.switch_to(drain_free);
    f.call_extern(ExternFn::Free, &[dp]);
    let fc2 = f.load(free_slot, 0);
    let one5 = f.iconst(1);
    let fc3 = f.bin(BinOp::Add, fc2, one5);
    f.store(free_slot, 0, fc3);
    f.br(drain_next);
    f.switch_to(drain_next);
    let one6 = f.iconst(1);
    let d1 = f.bin(BinOp::Add, d, one6);
    f.store(i_slot, 0, d1);
    let ns2 = f.iconst(CHURN_SLOTS);
    let more3 = f.cmp(CmpOp::Lt, d1, ns2);
    f.cond_br(more3, drain, report);

    f.switch_to(report);
    f.call_extern(ExternFn::Free, &[slots]);
    let allocs = f.load(alloc_slot, 0);
    let frees = f.load(free_slot, 0);
    f.call_extern(ExternFn::PrintI64, &[allocs]);
    f.call_extern(ExternFn::PrintI64, &[frees]);
    let balanced = f.cmp(CmpOp::Eq, allocs, frees);
    f.call_extern(ExternFn::PrintI64, &[balanced]);
    // allocs == frees when the drain is correct, and mix(x, x) == 0 —
    // skew one argument so the exit signature stays non-degenerate.
    let skew = f.iconst(7);
    let af = f.bin(BinOp::Mul, allocs, skew);
    let one7 = f.iconst(1);
    let af1 = f.bin(BinOp::Add, af, one7);
    let sig = f.call(mix, &[af1, frees]);
    let emask = f.iconst(0xffff);
    let exitv = f.bin(BinOp::And, sig, emask);
    f.ret(Some(exitv));
    f.finish();

    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{record, RecordConfig};
    use r2c_ir::{interpret, verify_module};

    #[test]
    fn all_sources_verify_and_interpret() {
        for &a in ALL {
            let m = source(a, &default_env(a));
            verify_module(&m).unwrap_or_else(|e| panic!("{}: {e:?}", a.name()));
            let r =
                interpret(&m, "main", 50_000_000).unwrap_or_else(|e| panic!("{}: {e:?}", a.name()));
            assert!(r.executed > 1_000, "{} too small: {}", a.name(), r.executed);
            assert!(
                r.executed < 2_000_000,
                "{} too large for the debug-mode suites: {}",
                a.name(),
                r.executed
            );
            assert!(!r.output.is_empty(), "{} prints nothing", a.name());
        }
    }

    #[test]
    fn sources_agree_with_vm_and_record_cleanly() {
        let rc = RecordConfig::default();
        for &a in ALL {
            let m = source(a, &default_env(a));
            let interp = interpret(&m, "main", 50_000_000).unwrap();
            let rec = record(&m, a.name(), &rc).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(rec.exit, interp.ret, "{}", a.name());
            assert_eq!(rec.output, interp.output, "{}", a.name());
            assert!(
                rec.trace.ops.len() > 10,
                "{}: trace suspiciously small",
                a.name()
            );
        }
    }

    #[test]
    fn churn_is_balanced_and_dbpage_has_no_ghost_hits() {
        let churn = source(Archetype::Churn, &default_env(Archetype::Churn));
        let r = interpret(&churn, "main", 50_000_000).unwrap();
        assert_eq!(*r.output.last().unwrap(), 1, "allocs != frees");

        let db = source(Archetype::DbPage, &default_env(Archetype::DbPage));
        let r = interpret(&db, "main", 50_000_000).unwrap();
        // Output: [hits, ghost hits, pages freed].
        assert_eq!(r.output[1], 0, "ghost lookups must all miss");
        assert!(r.output[0] > 0 && r.output[2] > 0);
    }

    #[test]
    fn env_from_schedule_takes_request_payloads() {
        let s = Schedule::generate(9, 2, 40, 250);
        let env = env_from_schedule(&s);
        assert!(!env.is_empty());
        assert!(env.len() < 40, "probes should have been skipped");
    }

    #[test]
    fn distinct_envs_give_distinct_programs() {
        let a = source(Archetype::Interp, &default_env(Archetype::Interp));
        let b = source(Archetype::Interp, &default_env(Archetype::Json));
        assert_ne!(a, b);
    }
}
