//! The *reduce* half of the pipeline.
//!
//! Two independent reductions happen here:
//!
//! 1. **Op-stream collapse** ([`collapse`]): greedy run-length
//!    encoding over the boundary-event stream, turning repeated
//!    windows (loop iterations, request-handling rounds) into
//!    parameterized [`ReplayOp::Rep`] ops. Lossless by construction —
//!    [`expand`] inverts it exactly.
//!
//! 2. **Program delta-debugging** ([`reduce_captured`]): shrink the
//!    captured *module* with the fuzz reducer, using the trace as the
//!    oracle — a candidate survives only if re-recording it reproduces
//!    the original exit code, output, heap-op counts, and the
//!    reference interpreter's observable globals. The result is a
//!    standalone program that exercises the same environment boundary
//!    with less dead weight.

use crate::format::ReplayOp;
use crate::record::{record, RecordConfig, Recording};
use r2c_core::R2cConfig;
use r2c_fuzz::oracle::REFERENCE_FUEL;
use r2c_fuzz::{reduce, Reduction};
use r2c_ir::{interpret, Module};

/// Maximum window length the RLE collapse considers.
const MAX_WINDOW: usize = 8;

/// Collapses repeated windows (length 1..=8) of the op stream into
/// [`ReplayOp::Rep`] ops. Input must be flat (no pre-existing reps);
/// greedy, longest-saving window first at each position.
pub fn collapse(ops: &[ReplayOp]) -> Vec<ReplayOp> {
    let mut out = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        let mut best: Option<(usize, usize)> = None; // (window, count)
        for w in 1..=MAX_WINDOW.min(ops.len() - i) {
            let window = &ops[i..i + w];
            let mut count = 1;
            while i + (count + 1) * w <= ops.len()
                && ops[i + count * w..i + (count + 1) * w] == *window
            {
                count += 1;
            }
            // A rep replaces count*w ops with w ops plus a header; only
            // worth it when it strictly shrinks the stream.
            if count >= 2 && count * w > w + 1 {
                let saving = count * w - (w + 1);
                let best_saving = best.map_or(0, |(bw, bc)| bc * bw - (bw + 1));
                if saving > best_saving {
                    best = Some((w, count));
                }
            }
        }
        match best {
            Some((w, count)) => {
                out.push(ReplayOp::Rep {
                    count: count as u32,
                    body: ops[i..i + w].to_vec(),
                });
                i += count * w;
            }
            None => {
                out.push(ops[i].clone());
                i += 1;
            }
        }
    }
    out
}

/// Expands every [`ReplayOp::Rep`] back to the flat stream; inverse of
/// [`collapse`].
pub fn expand(ops: &[ReplayOp]) -> Vec<ReplayOp> {
    let mut out = Vec::new();
    for op in ops {
        match op {
            ReplayOp::Rep { count, body } => {
                for _ in 0..*count {
                    out.extend(body.iter().cloned());
                }
            }
            other => out.push(other.clone()),
        }
    }
    out
}

/// The oracle fields the program reducer must preserve, derived from
/// one recording plus a reference-interpreter run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReduceOracle {
    exit: i64,
    output: Vec<i64>,
    allocs: u64,
    frees: u64,
    /// Final observable bytes per global, keyed by name: a candidate
    /// may *drop* an (unreferenced) global, but every global it keeps
    /// must end with the recorded contents.
    globals: Vec<(String, Vec<u8>)>,
}

impl ReduceOracle {
    /// The diversified cross-check config: reductions are accepted only
    /// if the candidate behaves identically under a fully diversified
    /// build as well. The record config is the undiversified baseline,
    /// where the reference interpreter's address space happens to
    /// coincide with the VM's — a reduction that makes an address leak
    /// into the program's answer would pass the baseline comparison and
    /// only betray itself once the layout moves.
    fn diversified(rc: &RecordConfig) -> RecordConfig {
        RecordConfig {
            config: R2cConfig::full(1),
            ..rc.clone()
        }
    }

    /// Builds the oracle for `module` from its recording under `rc`.
    pub fn of(module: &Module, rec: &Recording, rc: &RecordConfig) -> Result<ReduceOracle, String> {
        let interp = interpret(module, "main", REFERENCE_FUEL)
            .map_err(|e| format!("reference interpreter rejected module: {e:?}"))?;
        if interp.ret != rec.exit {
            return Err(format!(
                "interpreter/VM disagree before reduction: {} vs {}",
                interp.ret, rec.exit
            ));
        }
        let div = record(module, "diversified", &ReduceOracle::diversified(rc))?;
        if div.exit != rec.exit || div.output != rec.output {
            return Err(format!(
                "module is layout-dependent before reduction: diversified exit {} vs {}",
                div.exit, rec.exit
            ));
        }
        let globals = module
            .globals
            .iter()
            .map(|g| g.name.clone())
            .zip(interp.globals)
            .collect();
        Ok(ReduceOracle {
            exit: rec.exit,
            output: rec.output.clone(),
            allocs: rec.trace.summary.allocs,
            frees: rec.trace.summary.frees,
            globals,
        })
    }

    /// True if `candidate` still reproduces the oracle.
    pub fn holds(&self, candidate: &Module, rc: &RecordConfig) -> bool {
        let Ok(interp) = interpret(candidate, "main", REFERENCE_FUEL) else {
            return false;
        };
        if interp.ret != self.exit {
            return false;
        }
        for (g, bytes) in candidate.globals.iter().zip(&interp.globals) {
            match self.globals.iter().find(|(name, _)| *name == g.name) {
                Some((_, orig)) if orig == bytes => {}
                _ => return false,
            }
        }
        let Ok(rec) = record(candidate, "candidate", rc) else {
            return false;
        };
        if rec.exit != self.exit
            || rec.output != self.output
            || rec.trace.summary.allocs != self.allocs
            || rec.trace.summary.frees != self.frees
        {
            return false;
        }
        // Layout-variance cross-check (see [`ReduceOracle::diversified`]).
        let Ok(div) = record(candidate, "candidate-div", &ReduceOracle::diversified(rc)) else {
            return false;
        };
        div.exit == self.exit && div.output == self.output
    }
}

/// Delta-debugs `module` against its own trace oracle: the reduced
/// module records to the same exit code, output, and heap-op counts
/// (under the record config *and* a fully diversified build — see
/// [`ReduceOracle::diversified`]), and agrees with the reference
/// interpreter on observable globals.
pub fn reduce_captured(
    module: &Module,
    rc: &RecordConfig,
    max_rounds: usize,
) -> Result<(Reduction, ReduceOracle), String> {
    let rec = record(module, "original", rc)?;
    let oracle = ReduceOracle::of(module, &rec, rc)?;
    let reduction = reduce(module, &|m| oracle.holds(m, rc), max_rounds);
    Ok((reduction, oracle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_ir::parse_module;
    use r2c_vm::NativeKind;

    fn e(v: u64) -> ReplayOp {
        ReplayOp::Extern {
            kind: NativeKind::PrintI64,
            args: [v, 0, 0],
            ret: 0,
        }
    }

    fn ind(at: u64) -> ReplayOp {
        ReplayOp::Indirect { at, target: at + 1 }
    }

    #[test]
    fn collapse_finds_single_op_runs() {
        let ops: Vec<ReplayOp> = std::iter::repeat_n(e(7), 10).collect();
        let c = collapse(&ops);
        assert_eq!(
            c,
            vec![ReplayOp::Rep {
                count: 10,
                body: vec![e(7)]
            }]
        );
        assert_eq!(expand(&c), ops);
    }

    #[test]
    fn collapse_finds_multi_op_windows() {
        // (ind, e) * 5 with a prefix and suffix.
        let mut ops = vec![e(1)];
        for _ in 0..5 {
            ops.push(ind(0x40));
            ops.push(e(2));
        }
        ops.push(e(3));
        let c = collapse(&ops);
        assert_eq!(
            c,
            vec![
                e(1),
                ReplayOp::Rep {
                    count: 5,
                    body: vec![ind(0x40), e(2)]
                },
                e(3),
            ]
        );
        assert_eq!(expand(&c), ops);
    }

    #[test]
    fn collapse_leaves_aperiodic_streams_alone() {
        let ops = vec![e(1), e(2), e(3), ind(9), e(1)];
        assert_eq!(collapse(&ops), ops);
    }

    #[test]
    fn collapse_roundtrips_pseudorandom_streams() {
        // Deterministic LCG stream with enough structure to trigger
        // both collapsed and raw segments.
        let mut x: u64 = 42;
        let mut ops = Vec::new();
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ops.push(e(x >> 61)); // values 0..8 — plenty of short runs
        }
        let c = collapse(&ops);
        assert!(
            c.len() < ops.len(),
            "expected some collapse on a skewed stream"
        );
        assert_eq!(expand(&c), ops);
    }

    #[test]
    fn reduce_strips_dead_weight_but_keeps_oracle() {
        // Dead helper + unused global ride along; the oracle answer
        // depends only on the live path.
        let src = "global @junk zero 64 align 8\n\
             func @dead(1) {\nentry:\n  %0 = param 0\n  %1 = const 3\n  %2 = mul %0, %1\n  ret %2\n}\n\
             func @main(0) {\nentry:\n  %0 = const 8\n  %1 = extern malloc(%0)\n  \
             %2 = const 41\n  store %1 + 0, %2\n  %3 = load %1 + 0\n  %4 = const 1\n  \
             %5 = add %3, %4\n  %6 = extern print(%5)\n  %7 = extern free(%1)\n  ret %5\n}\n";
        let m = parse_module(src).unwrap();
        let rc = RecordConfig::default();
        let (reduction, oracle) = reduce_captured(&m, &rc, 4).unwrap();
        assert!(oracle.holds(&reduction.module, &rc));
        assert!(
            reduction.stats.accepted > 0,
            "reducer should strip the dead function or global: {:?}",
            reduction.stats
        );
    }
}
