//! Satellite suite 2: **record→reduce fidelity goldens**. The binary
//! traces under `tests/traces/*.r2ct` are the recorded ground truth for
//! every checked-in captured workload; re-recording the workload's
//! module must reproduce them byte-for-byte, and the reduction must
//! never move an oracle field (exit, output, heap-op counts).
//!
//! To re-record after an intentional change to the tracer, the trace
//! format, or a workload source:
//! `R2C_BLESS=1 cargo test -p r2c-replay --test fidelity`
//! (equivalently `capture --bless`, which also rewrites the workload
//! files and the fuzz-corpus entry).

use std::fs;
use std::path::PathBuf;

use r2c_replay::{
    capture_pipeline, collapse, default_env, record::record_with_arrivals, source, workload_file,
    Archetype, CapturedTrace, RecordConfig, ReplayOp,
};
use r2c_workloads::captured_workloads;

fn traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/traces")
}

fn workloads_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("workloads")
}

/// Arrival cycles baked into a golden trace (the webserver capture has
/// them; re-recording must replay the same open-loop timing).
fn golden_arrivals(trace: &CapturedTrace) -> Vec<u64> {
    trace
        .expanded_ops()
        .iter()
        .filter_map(|op| match op {
            ReplayOp::Arrival { at } => Some(*at),
            _ => None,
        })
        .collect()
}

#[test]
fn golden_traces_rerecord_byte_identically() {
    let rc = RecordConfig::default();
    for w in captured_workloads() {
        let path = traces_dir().join(format!("{}.r2ct", w.name));
        let arrivals = match fs::read(&path) {
            Ok(bytes) => golden_arrivals(
                &CapturedTrace::decode(&bytes).expect("checked-in golden trace decodes"),
            ),
            Err(_) if std::env::var_os("R2C_BLESS").is_some() => Vec::new(),
            Err(e) => panic!(
                "read {}: {e} (run with R2C_BLESS=1 to record)",
                path.display()
            ),
        };
        let rec = record_with_arrivals(&w.module, w.name, &rc, &arrivals)
            .expect("checked-in workload records");
        let mut trace = rec.trace;
        trace.ops = collapse(&trace.ops);
        let got = trace.encode();
        if std::env::var_os("R2C_BLESS").is_some() {
            fs::write(&path, &got).unwrap();
            continue;
        }
        let want = fs::read(&path).unwrap();
        assert_eq!(
            got,
            want,
            "{}: re-recorded trace diverged from {} (R2C_BLESS=1 re-records after intentional changes)",
            w.name,
            path.display()
        );
    }
}

#[test]
fn golden_traces_decode_losslessly_and_match_workload_headers() {
    for w in captured_workloads() {
        let bytes = fs::read(traces_dir().join(format!("{}.r2ct", w.name))).unwrap();
        let trace = CapturedTrace::decode(&bytes).expect("golden decodes");
        // Lossless: decode → encode is the identity on golden bytes.
        assert_eq!(trace.encode(), bytes, "{}: encode(decode(x)) != x", w.name);
        assert_eq!(trace.name, w.name);
        // The workload file's provenance header quotes the same
        // recording the golden trace holds.
        let text = fs::read_to_string(workloads_dir().join(format!("{}.r2cir", w.name))).unwrap();
        let field = |k: &str| {
            r2c_replay::header_field(&text, k)
                .unwrap_or_else(|| panic!("{}: missing header {k}", w.name))
                .parse::<u64>()
                .unwrap()
        };
        assert_eq!(
            trace.summary.instructions,
            field("instructions"),
            "{}",
            w.name
        );
        assert_eq!(
            trace.summary.allocs + trace.summary.frees,
            field("externs"),
            "{}",
            w.name
        );
        assert_eq!(trace.summary.exit, field("exit") as i64, "{}", w.name);
        // Collapse is worthwhile on every checked-in trace (the RLE
        // half of "reduce" actually fires).
        assert!(
            trace.ops.len() as u64 <= trace.expanded_len(),
            "{}: collapsed stream longer than expansion",
            w.name
        );
    }
}

#[test]
fn end_to_end_rereduction_matches_checked_in_churn() {
    // The full record→reduce→replay pipeline is deterministic: re-run
    // it from the archetype source and compare against both checked-in
    // artifacts. (The `capture --verify` CI gate does the same for
    // cap-interp; covering a second archetype here keeps the gate
    // honest about reduction, not just recording.)
    let a = Archetype::Churn;
    let rc = RecordConfig::default();
    let m = source(a, &default_env(a));
    let cap = capture_pipeline(a.name(), &m, &rc, 3).expect("pipeline runs");
    let file = workload_file(&cap, a.name());
    let workload_path = workloads_dir().join(format!("{}.r2cir", a.name()));
    let trace_path = traces_dir().join(format!("{}.r2ct", a.name()));
    if std::env::var_os("R2C_BLESS").is_some() {
        fs::write(&workload_path, &file).unwrap();
        fs::write(&trace_path, cap.trace.encode()).unwrap();
        return;
    }
    assert_eq!(
        file,
        fs::read_to_string(&workload_path).unwrap(),
        "cap-churn re-reduction drifted from the checked-in workload (R2C_BLESS=1 or `capture --bless` re-records)"
    );
    assert_eq!(
        cap.trace.encode(),
        fs::read(&trace_path).unwrap(),
        "cap-churn re-reduction drifted from the golden trace"
    );
}

#[test]
fn reduction_preserves_every_oracle_field() {
    // Record the original and the checked-in reduced module for each
    // reduced archetype; exit, output, and heap-op counts must agree —
    // the reducer is allowed to delete dead weight, never to move the
    // answer.
    let rc = RecordConfig::default();
    let workloads = captured_workloads();
    for a in [
        Archetype::Interp,
        Archetype::Json,
        Archetype::DbPage,
        Archetype::Churn,
    ] {
        let original = source(a, &default_env(a));
        let orig_rec = record_with_arrivals(&original, a.name(), &rc, &[]).unwrap();
        let reduced = &workloads
            .iter()
            .find(|w| w.name == a.name())
            .expect("archetype is checked in")
            .module;
        let red_rec = record_with_arrivals(reduced, a.name(), &rc, &[]).unwrap();
        assert_eq!(orig_rec.exit, red_rec.exit, "{}: exit moved", a.name());
        assert_eq!(
            orig_rec.output,
            red_rec.output,
            "{}: output moved",
            a.name()
        );
        assert_eq!(
            orig_rec.trace.summary.allocs,
            red_rec.trace.summary.allocs,
            "{}: alloc count moved",
            a.name()
        );
        assert_eq!(
            orig_rec.trace.summary.frees,
            red_rec.trace.summary.frees,
            "{}: free count moved",
            a.name()
        );
        assert!(
            reduced.funcs.len() <= original.funcs.len()
                && reduced.globals.len() <= original.globals.len(),
            "{}: reduction grew the module",
            a.name()
        );
    }
}
