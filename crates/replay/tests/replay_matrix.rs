//! Satellite suite 3: the captured workloads meet the fuzz oracle.
//!
//! * Every interpreter-checkable captured workload passes the matrix's
//!   `replay` cell (capture tracing is transparent, the boundary log is
//!   deterministic, nothing is dropped).
//! * The corpus-admitted capture (`captured-churn`) passes the *whole*
//!   quick matrix — the admission bar every corpus entry clears.
//! * The mutation engine produces verifier-gated mutants of the
//!   captured program, so the corpus entry actually evolves instead of
//!   sitting inert.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use r2c_core::R2cConfig;
use r2c_fuzz::{gate, mutate, run_oracle, CaseVerdict, OracleMatrix, REPLAY_CELL_PREFIX};
use r2c_vm::MachineKind;
use r2c_workloads::captured_workloads;

/// The archetype captures; `cap-websrv` is excluded because its
/// handler-table globals hold code pointers, which the reference
/// interpreter models with its own function addressing — the replay
/// determinism suite covers it instead.
fn interpretable_captures() -> Vec<r2c_workloads::Workload> {
    captured_workloads()
        .into_iter()
        .filter(|w| w.name != "cap-websrv")
        .collect()
}

#[test]
fn captured_workloads_pass_the_replay_cell() {
    for w in interpretable_captures() {
        for build_seed in [1, 2] {
            let matrix = OracleMatrix::single(
                &format!("{REPLAY_CELL_PREFIX}-full"),
                R2cConfig::full(0),
                MachineKind::EpycRome,
                build_seed,
            );
            match run_oracle(&w.module, &matrix) {
                CaseVerdict::Pass { cells } => assert_eq!(cells, 1),
                other => panic!("{} seed {build_seed}: {other:?}", w.name),
            }
        }
    }
}

#[test]
fn corpus_admitted_capture_passes_the_quick_matrix() {
    let workloads = captured_workloads();
    let churn = workloads
        .iter()
        .find(|w| w.name == "cap-churn")
        .expect("cap-churn is checked in");
    match run_oracle(&churn.module, &OracleMatrix::quick()) {
        CaseVerdict::Pass { cells } => {
            assert_eq!(cells, OracleMatrix::quick().cells().len());
        }
        other => panic!("cap-churn failed the corpus admission bar: {other:?}"),
    }
}

#[test]
fn corpus_entry_matches_checked_in_workload() {
    // The fuzz-corpus entry is the same module as the checked-in
    // workload — blessing keeps them in lockstep.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../fuzz/corpus/captured-churn.r2cir");
    let text = std::fs::read_to_string(&path).expect("corpus entry readable");
    let entry = r2c_ir::parse_module(&text).expect("corpus entry parses");
    let workloads = captured_workloads();
    let churn = workloads.iter().find(|w| w.name == "cap-churn").unwrap();
    assert_eq!(
        entry, churn.module,
        "corpus entry drifted from the workload file"
    );
}

#[test]
fn mutation_engine_evolves_the_captured_program() {
    let workloads = captured_workloads();
    let churn = workloads
        .iter()
        .find(|w| w.name == "cap-churn")
        .expect("cap-churn is checked in");
    let mut rng = SmallRng::seed_from_u64(0xCAFE);
    let mut gated = 0;
    let mut kinds = std::collections::BTreeSet::new();
    for _ in 0..24 {
        if let Some((mutant, kind)) = mutate(&churn.module, &mut rng, 16) {
            assert!(gate(&mutant), "mutate() must return gated mutants only");
            assert_ne!(mutant, churn.module);
            gated += 1;
            kinds.insert(format!("{kind:?}"));
        }
    }
    assert!(
        gated >= 8,
        "mutation mostly fails on the captured program: {gated}/24 gated"
    );
    assert!(
        kinds.len() >= 2,
        "only one mutation kind ever applies: {kinds:?}"
    );
}
