//! Satellite suite 1: **replay determinism**. Every checked-in
//! captured workload must replay with bit-identical [`ExecStats`],
//! exit status, and output across all four machine cost models, with
//! superinstruction fusion on and off, and with the tracer on and off.
//!
//! This is the product of two contracts: the decoded execution
//! engine's fused/unfused identity and the tracer's zero-perturbation
//! guarantee, both applied to the replay corpus instead of the
//! hand-written suites. A workload that fails here is not a benchmark
//! — its numbers would depend on which lane of the VM ran it.

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::Module;
use r2c_vm::{ExecStats, ExitStatus, MachineKind, TraceConfig, Vm, VmConfig};
use r2c_workloads::captured_workloads;

/// Runs `module` once on `machine`; one lane of the determinism cube.
fn run_lane(
    module: &Module,
    machine: MachineKind,
    no_fuse: bool,
    traced: bool,
) -> (ExecStats, i64, Vec<i64>) {
    let image = R2cCompiler::new(R2cConfig::baseline(0))
        .build(module)
        .expect("captured workload must build");
    let mut cfg = VmConfig::new(machine.config());
    cfg.no_fuse = no_fuse;
    let mut vm = Vm::new(&image, cfg);
    if traced {
        vm.enable_trace(&image, TraceConfig::default());
    }
    let out = vm.run();
    let ExitStatus::Exited(code) = out.status else {
        panic!("captured workload did not exit cleanly: {:?}", out.status);
    };
    (out.stats, code, vm.output.clone())
}

#[test]
fn captured_workloads_replay_bit_identically_across_the_cube() {
    let workloads = captured_workloads();
    assert!(
        workloads.len() >= 5,
        "expected at least 5 captured workloads, found {}",
        workloads.len()
    );
    for w in &workloads {
        for &machine in &MachineKind::ALL {
            let fused = run_lane(&w.module, machine, false, false);
            for (no_fuse, traced) in [(true, false), (false, true), (true, true)] {
                let lane = run_lane(&w.module, machine, no_fuse, traced);
                assert_eq!(
                    fused, lane,
                    "{} on {machine:?}: no_fuse={no_fuse} traced={traced} lane diverged",
                    w.name
                );
            }
        }
    }
}

#[test]
fn captured_workloads_are_machine_sensitive_but_insn_stable() {
    // The *cycle* model may differ per machine (that is what the cost
    // models are for), but the executed instruction stream must not:
    // replay is an architectural recording, not a microarchitectural
    // one.
    for w in captured_workloads() {
        let mut insns = Vec::new();
        for &machine in &MachineKind::ALL {
            let (stats, _, _) = run_lane(&w.module, machine, false, false);
            insns.push(stats.instructions);
        }
        assert!(
            insns.windows(2).all(|p| p[0] == p[1]),
            "{}: instruction counts differ across machines: {insns:?}",
            w.name
        );
    }
}

#[test]
fn captured_workloads_exit_codes_match_their_headers() {
    // The `# exit:` header in each workload file is the recorded
    // answer; replaying must reproduce it on every machine.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("workloads");
    for w in captured_workloads() {
        let text = std::fs::read_to_string(dir.join(format!("{}.r2cir", w.name)))
            .expect("workload file readable");
        let want: i64 = text
            .lines()
            .find_map(|l| l.strip_prefix("# exit: "))
            .expect("workload header has exit")
            .trim()
            .parse()
            .expect("exit header parses");
        for &machine in &MachineKind::ALL {
            let (_, code, _) = run_lane(&w.module, machine, false, false);
            assert_eq!(
                code, want,
                "{} on {machine:?}: exit drifted from header",
                w.name
            );
        }
    }
}
