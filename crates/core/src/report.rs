//! Compile-time telemetry: what each R²C pass cost and what it emitted.
//!
//! [`CompileReport`] is the build half of the r2c-trace observability
//! layer (the execution half lives in [`r2c_vm::trace`]). It records
//! per-pass wall time, per-function instrumentation counts (NOPs,
//! prolog traps, BTDP stores, BTRA sites) and the code growth from the
//! pre-link program to the linked image, and serializes to the same
//! minimal hand-rolled JSON the bench harness uses.

use r2c_codegen::{FuncKind, Program};
use r2c_vm::trace::json_escape;
use r2c_vm::{Image, Insn};

/// Wall time of one compiler pass.
#[derive(Clone, Debug)]
pub struct PassTiming {
    /// Pass name (`"verify"`, `"inject-btdp"`, `"lower"`,
    /// `"check-program"`, `"link"`, `"check-image"`).
    pub pass: &'static str,
    /// Host wall time in microseconds.
    pub wall_us: u64,
}

/// Static per-function emission statistics, taken from the pre-link
/// program (booby-trap padding functions are generated at link time and
/// appear only in the image totals).
#[derive(Clone, Debug)]
pub struct FuncReport {
    /// Function name.
    pub name: String,
    /// `"normal"`, `"booby-trap"` or `"constructor"`.
    pub kind: &'static str,
    /// Emitted instruction count.
    pub insns: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// NOPs inserted by call-site NOP insertion.
    pub nops: u32,
    /// Trap instructions (prolog traps; booby-trap bodies).
    pub traps: u32,
    /// BTDP stack stores inserted.
    pub btdp_stores: u32,
    /// Call sites instrumented with BTRA windows.
    pub btra_sites: u32,
}

/// Telemetry for one [`R2cCompiler::build_with_report`] invocation.
///
/// [`R2cCompiler::build_with_report`]: crate::R2cCompiler::build_with_report
#[derive(Clone, Debug, Default)]
pub struct CompileReport {
    /// Diversification seed of this variant.
    pub seed: u64,
    /// Wall time per pass, in execution order.
    pub passes: Vec<PassTiming>,
    /// Per-function emission statistics (pre-link).
    pub funcs: Vec<FuncReport>,
    /// Total text bytes of the pre-link program (compiled functions
    /// only, before booby traps and layout padding).
    pub prelink_text_bytes: u64,
    /// Text bytes of the linked image (includes generated booby traps
    /// and shuffle padding).
    pub image_text_bytes: u64,
    /// Instruction count of the linked image.
    pub image_insns: u64,
    /// Booby-trap functions the linker interspersed.
    pub booby_traps: u32,
}

impl CompileReport {
    /// Records per-function statistics from the pre-link program.
    pub fn record_program(&mut self, program: &Program) {
        self.prelink_text_bytes = program.text_bytes();
        self.booby_traps = program.booby_trap_funcs;
        self.funcs = program
            .funcs
            .iter()
            .map(|f| FuncReport {
                name: f.name.clone(),
                kind: match f.kind {
                    FuncKind::Normal => "normal",
                    FuncKind::BoobyTrap => "booby-trap",
                    FuncKind::Constructor => "constructor",
                },
                insns: f.insns.len() as u64,
                bytes: f.byte_size(),
                nops: f
                    .insns
                    .iter()
                    .filter(|i| matches!(i, Insn::Nop { .. }))
                    .count() as u32,
                traps: f.insns.iter().filter(|i| matches!(i, Insn::Trap)).count() as u32,
                btdp_stores: f.btdp_stores,
                btra_sites: f.btra_sites,
            })
            .collect();
    }

    /// Records image-level totals from the linked image.
    pub fn record_image(&mut self, image: &Image) {
        self.image_text_bytes = image.text_size();
        self.image_insns = image.insns.len() as u64;
    }

    /// Total compile wall time across all timed passes, in microseconds.
    pub fn total_wall_us(&self) -> u64 {
        self.passes.iter().map(|p| p.wall_us).sum()
    }

    /// Code growth of the linked image over the pre-link program text
    /// (booby traps, shuffle padding), in bytes.
    pub fn link_growth_bytes(&self) -> u64 {
        self.image_text_bytes
            .saturating_sub(self.prelink_text_bytes)
    }

    /// Compile-side coverage features for the fuzzer's coverage map:
    /// which passes ran, and order-of-magnitude buckets of every
    /// instrumentation counter the pipeline emitted. Counters are
    /// bucketed (log2) so the feature space stays small and a case only
    /// counts as *new* coverage when it moves a counter into a new
    /// magnitude class, not on every ±1 wobble.
    pub fn coverage_features(&self) -> Vec<String> {
        let mut f: Vec<String> = self
            .passes
            .iter()
            .map(|p| format!("pass:{}", p.pass))
            .collect();
        let (mut nops, mut traps, mut stores, mut sites) = (0u64, 0u64, 0u64, 0u64);
        for fr in &self.funcs {
            nops += fr.nops as u64;
            traps += fr.traps as u64;
            stores += fr.btdp_stores as u64;
            sites += fr.btra_sites as u64;
        }
        for (name, v) in [
            ("nops", nops),
            ("traps", traps),
            ("btdp-stores", stores),
            ("btra-sites", sites),
            ("booby-traps", self.booby_traps as u64),
            ("link-growth", self.link_growth_bytes()),
            ("image-insns", self.image_insns),
            ("funcs", self.funcs.len() as u64),
        ] {
            f.push(format!("compile:{name}:{}", coverage_bucket(v)));
        }
        f
    }

    /// Serializes the report as minimal JSON (no JSON crate in the
    /// offline build; consumers are our own scripts and tests).
    pub fn to_json(&self) -> String {
        let mut j = String::from("{\n");
        j.push_str(&format!("  \"seed\": {},\n", self.seed));
        j.push_str(&format!("  \"total_wall_us\": {},\n", self.total_wall_us()));
        j.push_str("  \"passes\": [\n");
        for (i, p) in self.passes.iter().enumerate() {
            j.push_str(&format!(
                "    {{\"pass\": \"{}\", \"wall_us\": {}}}{}\n",
                p.pass,
                p.wall_us,
                if i + 1 == self.passes.len() { "" } else { "," }
            ));
        }
        j.push_str("  ],\n");
        j.push_str(&format!(
            "  \"prelink_text_bytes\": {},\n",
            self.prelink_text_bytes
        ));
        j.push_str(&format!(
            "  \"image_text_bytes\": {},\n",
            self.image_text_bytes
        ));
        j.push_str(&format!(
            "  \"link_growth_bytes\": {},\n",
            self.link_growth_bytes()
        ));
        j.push_str(&format!("  \"image_insns\": {},\n", self.image_insns));
        j.push_str(&format!("  \"booby_traps\": {},\n", self.booby_traps));
        j.push_str("  \"funcs\": [\n");
        for (i, f) in self.funcs.iter().enumerate() {
            j.push_str(&format!(
                "    {{\"name\": \"{}\", \"kind\": \"{}\", \"insns\": {}, \"bytes\": {}, \
                 \"nops\": {}, \"traps\": {}, \"btdp_stores\": {}, \"btra_sites\": {}}}{}\n",
                json_escape(&f.name),
                f.kind,
                f.insns,
                f.bytes,
                f.nops,
                f.traps,
                f.btdp_stores,
                f.btra_sites,
                if i + 1 == self.funcs.len() { "" } else { "," }
            ));
        }
        j.push_str("  ]\n}\n");
        j
    }
}

/// Log2 magnitude bucket used by every coverage feature that wraps a
/// counter: 0 stays 0, otherwise `1 + floor(log2(v))` — so 1, 2-3,
/// 4-7, 8-15, … each form one bucket.
pub fn coverage_bucket(v: u64) -> u32 {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_bucket_is_log2() {
        assert_eq!(coverage_bucket(0), 0);
        assert_eq!(coverage_bucket(1), 1);
        assert_eq!(coverage_bucket(2), 2);
        assert_eq!(coverage_bucket(3), 2);
        assert_eq!(coverage_bucket(4), 3);
        assert_eq!(coverage_bucket(1023), 10);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = CompileReport {
            seed: 7,
            passes: vec![
                PassTiming {
                    pass: "lower",
                    wall_us: 120,
                },
                PassTiming {
                    pass: "link",
                    wall_us: 30,
                },
            ],
            ..CompileReport::default()
        };
        r.funcs.push(FuncReport {
            name: "main".into(),
            kind: "normal",
            insns: 10,
            bytes: 40,
            nops: 2,
            traps: 1,
            btdp_stores: 3,
            btra_sites: 1,
        });
        r.prelink_text_bytes = 40;
        r.image_text_bytes = 100;
        let j = r.to_json();
        assert_eq!(r.total_wall_us(), 150);
        assert_eq!(r.link_growth_bytes(), 60);
        for key in [
            "\"seed\": 7",
            "\"total_wall_us\": 150",
            "\"pass\": \"lower\"",
            "\"link_growth_bytes\": 60",
            "\"name\": \"main\"",
            "\"btdp_stores\": 3",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
    }
}
