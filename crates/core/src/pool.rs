//! Warm variant pool: background pre-compilation of fresh-seed variants.
//!
//! Load-time re-randomization (paper §7.3) is only deployable if
//! respawning a worker on a *fresh* variant is not much slower than
//! restarting it on the same image. The pool makes respawn
//! production-plausible: a small thread pool compiles variants for
//! *announced* seeds in the background and parks the finished images in
//! a bounded FIFO cache, so that when the monitor actually needs the
//! variant, [`VariantPool::take`] usually returns a pre-built image (a
//! **warm** take, map-lookup latency) instead of compiling inline (a
//! **cold** take, full compile latency).
//!
//! Determinism contract: the image handed out for a seed is the one
//! [`R2cCompiler`] deterministically produces for `(module, config,
//! seed)` — *whether or not* the background thread won the race. Warm
//! vs. cold only changes host-side latency, never guest-visible state,
//! which is what lets the serving fleet keep its bit-identical
//! parallel-vs-serial event logs while using the pool.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use r2c_ir::Module;
use r2c_vm::Image;

use crate::compiler::R2cCompiler;
use crate::config::R2cConfig;

/// How a [`VariantPool::take`] was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TakeKind {
    /// The variant was already compiled and cached: the take cost a map
    /// lookup.
    Warm,
    /// A background thread was mid-compile; the take waited for it.
    InFlight,
    /// The seed was never prefetched (or was evicted): compiled inline.
    Cold,
}

/// One delivered variant plus how long the caller waited for it.
pub struct PooledVariant {
    /// The deterministically compiled image for the requested seed.
    pub image: Image,
    /// Warm cache hit, in-flight wait, or inline cold compile.
    pub kind: TakeKind,
    /// Host wall-clock latency of the take as observed by the caller.
    pub latency: Duration,
}

/// Aggregate pool counters (host-side observability only).
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Takes served from the ready cache.
    pub warm: u64,
    /// Takes that waited on an in-flight background compile.
    pub in_flight: u64,
    /// Takes compiled inline.
    pub cold: u64,
    /// Variants evicted from the bounded cache before being taken.
    pub evicted: u64,
    /// Cached variants the FIFO evictor *skipped* because a
    /// [`VariantPool::take`] waiter was registered on them — evicting
    /// those would force the waiter to recompile inline the very image
    /// a background thread just finished (the respawn-storm
    /// double-compile bug).
    pub evicted_while_waited: u64,
    /// Background compiles completed.
    pub prefetched: u64,
}

struct PoolState {
    /// Seeds queued for background compilation, oldest first.
    queue: VecDeque<u64>,
    /// Finished variants awaiting a take.
    ready: HashMap<u64, Image>,
    /// FIFO order of `ready` keys, for bounded eviction.
    ready_order: VecDeque<u64>,
    /// Seeds a background thread is currently compiling.
    in_flight: Vec<u64>,
    /// Seeds with a blocked [`VariantPool::take`] waiter → waiter count.
    /// A waited seed is immune to FIFO eviction: between the compile
    /// finishing and the waiter waking up, the cache entry is the only
    /// thing standing between the waiter and a duplicate inline
    /// compile.
    waiters: HashMap<u64, u32>,
    stats: PoolStats,
}

/// Test-only callback run at the start of every background compile.
type CompileHook = Arc<dyn Fn(u64) + Send + Sync>;

struct Shared {
    state: Mutex<PoolState>,
    /// Signalled when work arrives (for workers) and when a compile
    /// finishes (for takers waiting on an in-flight seed).
    cv: Condvar,
    module: Module,
    cfg: R2cConfig,
    capacity: usize,
    shutdown: AtomicBool,
    /// Test hook invoked (outside the state lock) at the start of every
    /// background compile; lets concurrency tests hold compiles at a
    /// barrier to pin down an interleaving. `None` in production.
    compile_hook: Mutex<Option<CompileHook>>,
}

impl Shared {
    fn compile(&self, seed: u64) -> Image {
        R2cCompiler::new(self.cfg.with_seed(seed))
            .build(&self.module)
            .expect("pool variant failed to build")
    }
}

/// A bounded cache of pre-compiled diversified variants.
///
/// Dropping the pool shuts the background threads down and joins them.
pub struct VariantPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl VariantPool {
    /// Creates a pool compiling variants of `module` under `cfg` (the
    /// seed is overridden per request). `capacity` bounds the ready
    /// cache; `threads == 0` disables background compilation entirely,
    /// making every take a measured cold compile.
    pub fn new(module: &Module, cfg: R2cConfig, capacity: usize, threads: usize) -> VariantPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                ready: HashMap::new(),
                ready_order: VecDeque::new(),
                in_flight: Vec::new(),
                waiters: HashMap::new(),
                stats: PoolStats::default(),
            }),
            cv: Condvar::new(),
            module: module.clone(),
            cfg,
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
            compile_hook: Mutex::new(None),
        });
        let workers = (0..threads)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        VariantPool { shared, workers }
    }

    /// Announces that `seed`'s variant will be needed soon. A background
    /// thread compiles it when one is free; duplicate announcements and
    /// announcements with no background threads are ignored.
    pub fn prefetch(&self, seed: u64) {
        if self.workers.is_empty() {
            return;
        }
        let mut st = self.shared.state.lock().unwrap();
        if st.ready.contains_key(&seed) || st.in_flight.contains(&seed) || st.queue.contains(&seed)
        {
            return;
        }
        st.queue.push_back(seed);
        drop(st);
        self.shared.cv.notify_all();
    }

    /// True if `seed`'s variant is compiled and parked in the cache.
    pub fn is_ready(&self, seed: u64) -> bool {
        self.shared.state.lock().unwrap().ready.contains_key(&seed)
    }

    /// Delivers the variant for `seed`, preferring the warm cache,
    /// waiting for an in-flight background compile, and falling back to
    /// an inline compile. The returned image is identical in all three
    /// cases.
    pub fn take(&self, seed: u64) -> PooledVariant {
        let start = Instant::now();
        let mut st = self.shared.state.lock().unwrap();
        // Not yet picked up by a worker: claim it ourselves.
        if let Some(pos) = st.queue.iter().position(|&s| s == seed) {
            st.queue.remove(pos);
        }
        if let Some(image) = Self::pop_ready(&mut st, seed) {
            st.stats.warm += 1;
            return PooledVariant {
                image,
                kind: TakeKind::Warm,
                latency: start.elapsed(),
            };
        }
        if st.in_flight.contains(&seed) {
            // Register as a waiter *before* releasing the lock to wait:
            // from this point on the evictor must not drop `seed`'s
            // finished image, or the wake-up below would find the cache
            // empty and recompile inline what was just compiled.
            *st.waiters.entry(seed).or_insert(0) += 1;
            while st.in_flight.contains(&seed) {
                st = self.shared.cv.wait(st).unwrap();
            }
            match st.waiters.get_mut(&seed) {
                Some(n) if *n > 1 => *n -= 1,
                _ => {
                    st.waiters.remove(&seed);
                }
            }
            if let Some(image) = Self::pop_ready(&mut st, seed) {
                st.stats.in_flight += 1;
                return PooledVariant {
                    image,
                    kind: TakeKind::InFlight,
                    latency: start.elapsed(),
                };
            }
            // Only reachable when several takers waited on the same
            // seed and an earlier waiter consumed the single cached
            // image: fall through to cold.
        }
        st.stats.cold += 1;
        drop(st);
        let image = self.shared.compile(seed);
        PooledVariant {
            image,
            kind: TakeKind::Cold,
            latency: start.elapsed(),
        }
    }

    fn pop_ready(st: &mut PoolState, seed: u64) -> Option<Image> {
        let image = st.ready.remove(&seed)?;
        st.ready_order.retain(|&s| s != seed);
        Some(image)
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        self.shared.state.lock().unwrap().stats
    }

    /// Installs a hook run at the start of every *background* compile.
    /// Test-only: lets a concurrency test park the background threads
    /// at a barrier while takers register as waiters.
    #[doc(hidden)]
    pub fn set_compile_hook(&self, hook: impl Fn(u64) + Send + Sync + 'static) {
        *self.shared.compile_hook.lock().unwrap() = Some(Arc::new(hook));
    }

    /// Total registered `take` waiters across all seeds. Test-only.
    #[doc(hidden)]
    pub fn debug_waiter_count(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap()
            .waiters
            .values()
            .map(|&n| n as usize)
            .sum()
    }

    /// Number of variants parked in the ready cache. Test-only.
    #[doc(hidden)]
    pub fn debug_ready_len(&self) -> usize {
        self.shared.state.lock().unwrap().ready.len()
    }
}

impl Drop for VariantPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(sh: &Shared) {
    loop {
        let seed = {
            let mut st = sh.state.lock().unwrap();
            loop {
                if sh.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(seed) = st.queue.pop_front() {
                    st.in_flight.push(seed);
                    break seed;
                }
                st = sh.cv.wait(st).unwrap();
            }
        };
        let hook = sh.compile_hook.lock().unwrap().clone();
        if let Some(h) = hook {
            h(seed);
        }
        let image = sh.compile(seed);
        let mut st = sh.state.lock().unwrap();
        st.in_flight.retain(|&s| s != seed);
        st.stats.prefetched += 1;
        insert_ready(&mut st, sh.capacity, seed, image);
        drop(st);
        sh.cv.notify_all();
    }
}

/// Parks a finished variant in the bounded ready cache, evicting the
/// oldest *unwaited* entry when full. Entries with a registered
/// [`VariantPool::take`] waiter are skipped (each pass over one counts
/// toward `evicted_while_waited`); when every cached seed has a waiter
/// the cache transiently exceeds capacity rather than throwing away an
/// image a blocked taker is about to pop.
fn insert_ready(st: &mut PoolState, capacity: usize, seed: u64, image: Image) {
    if st.ready.len() >= capacity {
        match st
            .ready_order
            .iter()
            .position(|s| !st.waiters.contains_key(s))
        {
            Some(pos) => {
                st.stats.evicted_while_waited += pos as u64;
                let old = st.ready_order.remove(pos).expect("position in bounds");
                st.ready.remove(&old);
                st.stats.evicted += 1;
            }
            None => {
                st.stats.evicted_while_waited += st.ready_order.len() as u64;
            }
        }
    }
    st.ready.insert(seed, image);
    st.ready_order.push_back(seed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_module() -> Module {
        r2c_ir::parse_module(
            "func @main(0) {\nentry:\n  %0 = const 11\n  %1 = extern print(%0)\n  ret %0\n}\n",
        )
        .unwrap()
    }

    fn image_fingerprint(image: &Image) -> (u64, usize) {
        (image.entry, image.insns.len())
    }

    #[test]
    fn warm_take_matches_cold_compile() {
        let m = tiny_module();
        let cfg = R2cConfig::full(0);
        let pool = VariantPool::new(&m, cfg, 4, 1);
        pool.prefetch(42);
        while !pool.is_ready(42) {
            std::thread::yield_now();
        }
        let warm = pool.take(42);
        assert_eq!(warm.kind, TakeKind::Warm);

        let cold_pool = VariantPool::new(&m, cfg, 4, 0);
        let cold = cold_pool.take(42);
        assert_eq!(cold.kind, TakeKind::Cold);
        assert_eq!(
            image_fingerprint(&warm.image),
            image_fingerprint(&cold.image)
        );
        assert_eq!(warm.image.insn_addrs, cold.image.insn_addrs);
    }

    #[test]
    fn unknown_seed_compiles_inline() {
        let m = tiny_module();
        let pool = VariantPool::new(&m, R2cConfig::full(0), 2, 1);
        let v = pool.take(7);
        assert_eq!(v.kind, TakeKind::Cold);
        assert_eq!(pool.stats().cold, 1);
    }

    #[test]
    fn evictor_skips_waited_seeds() {
        // White-box determinism: drive insert_ready on a hand-built
        // state, no threads involved.
        let m = tiny_module();
        let build = |seed| {
            R2cCompiler::new(R2cConfig::full(seed))
                .build(&m)
                .expect("tiny module compiles")
        };
        let mut st = PoolState {
            queue: VecDeque::new(),
            ready: HashMap::new(),
            ready_order: VecDeque::new(),
            in_flight: Vec::new(),
            waiters: HashMap::new(),
            stats: PoolStats::default(),
        };
        // Capacity 1 with seed 10 cached and a registered waiter:
        // inserting seed 11 must not evict 10.
        insert_ready(&mut st, 1, 10, build(10));
        st.waiters.insert(10, 1);
        insert_ready(&mut st, 1, 11, build(11));
        assert!(st.ready.contains_key(&10), "waited seed was evicted");
        assert!(st.ready.contains_key(&11));
        assert_eq!(st.stats.evicted, 0);
        assert_eq!(st.stats.evicted_while_waited, 1);
        // Once the waiter deregisters, 10 is the next FIFO victim.
        st.waiters.clear();
        insert_ready(&mut st, 1, 12, build(12));
        assert!(!st.ready.contains_key(&10));
        assert_eq!(st.stats.evicted, 1);
    }

    #[test]
    fn waited_variant_survives_capacity_one_storm() {
        use std::sync::atomic::AtomicUsize;

        // The respawn-storm regression: capacity-1 pool, two seeds
        // compiling concurrently, two takers blocked on them. The
        // second compile to finish overflows the cache; before the fix
        // it FIFO-evicted the first image while its taker was between
        // finish and wake-up, silently recompiling it inline as cold.
        let m = tiny_module();
        let pool = VariantPool::new(&m, R2cConfig::full(0), 1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let parked = Arc::new(AtomicUsize::new(0));
        {
            let gate = Arc::clone(&gate);
            let parked = Arc::clone(&parked);
            pool.set_compile_hook(move |_| {
                parked.fetch_add(1, Ordering::SeqCst);
                let (m, cv) = &*gate;
                let mut open = m.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
        }
        pool.prefetch(1);
        pool.prefetch(2);
        // Both background threads must be mid-compile (seeds in flight)
        // before the takers look, or a take would claim its seed off
        // the queue and compile cold by design.
        while parked.load(Ordering::SeqCst) < 2 {
            std::thread::yield_now();
        }
        std::thread::scope(|s| {
            let t1 = s.spawn(|| pool.take(1));
            let t2 = s.spawn(|| pool.take(2));
            while pool.debug_waiter_count() < 2 {
                std::thread::yield_now();
            }
            let (m, cv) = &*gate;
            *m.lock().unwrap() = true;
            cv.notify_all();
            let a = t1.join().unwrap();
            let b = t2.join().unwrap();
            assert_eq!(a.kind, TakeKind::InFlight);
            assert_eq!(b.kind, TakeKind::InFlight);
        });
        let st = pool.stats();
        assert_eq!(st.cold, 0, "a waiter was forced into a duplicate compile");
        assert_eq!(st.prefetched, 2);
        assert_eq!(pool.debug_waiter_count(), 0, "waiter leak");
    }

    #[test]
    fn cache_is_bounded_fifo() {
        let m = tiny_module();
        let pool = VariantPool::new(&m, R2cConfig::full(0), 2, 1);
        for seed in 0..5 {
            pool.prefetch(seed);
        }
        // Wait until all five background compiles have finished.
        while pool.stats().prefetched < 5 {
            std::thread::yield_now();
        }
        let st = pool.stats();
        assert_eq!(st.evicted, 3);
        // The two newest survive; an evicted seed falls back to cold.
        assert!(pool.is_ready(3) && pool.is_ready(4));
        assert_eq!(pool.take(0).kind, TakeKind::Cold);
        assert_eq!(pool.take(4).kind, TakeKind::Warm);
    }
}
