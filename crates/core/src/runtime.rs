//! Generation of the BTDP startup runtime (paper §5.2).
//!
//! Heap memory cannot be arranged at compile time, so R²C registers a
//! constructor that runs before `main`:
//!
//! 1. allocate `pool_pages` page-aligned, page-sized heap chunks;
//! 2. free all but a randomly chosen subset of `kept_pages`, leaving the
//!    kept chunks scattered across the heap;
//! 3. store pointers to random offsets inside the kept chunks into the
//!    BTDP array (heap-allocated in the hardened design of Figure 5;
//!    directly in the data section in the naive variant);
//! 4. write a few *decoy* BTDPs into data-section globals — these never
//!    appear on the stack, so comparing data-section pointers with
//!    stack pointers no longer identifies BTDPs;
//! 5. revoke all permissions on the kept pages, turning them into guard
//!    pages, and publish the array pointer in the data section.
//!
//! All random choices (which chunks to keep, which offsets to use) are
//! made at compile time from the build seed and baked into the
//! generated code as constants, exactly like the paper's compile-time
//! parameters.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use r2c_codegen::BtdpConfig;
use r2c_ir::{ExternFn, GlobalId, GlobalInit, Module, ModuleBuilder, Val};

/// Name of the constructor function the runtime injects.
pub const CTOR_NAME: &str = "__r2c_btdp_ctor";
/// Name of the data-section global holding the BTDP array pointer (or
/// the array itself in the naive variant).
pub const PTR_GLOBAL: &str = "__r2c_btdp_ptr";

/// What the injection created.
#[derive(Clone, Debug)]
pub struct BtdpRuntime {
    /// The global holding the array pointer (hardened) or the array
    /// itself (naive).
    pub ptr_global: GlobalId,
    /// Decoy globals written with BTDPs that never reach the stack.
    pub decoy_globals: Vec<GlobalId>,
    /// Number of entries in the BTDP array.
    pub array_len: u32,
    /// Name of the generated constructor.
    pub ctor_name: String,
}

/// Injects the BTDP globals and constructor into `module`.
///
/// Returns the handles the backend configuration needs. The constructor
/// is marked `no_instrument`: it runs before the BTDP array exists, so
/// it must not be instrumented itself.
pub fn inject_btdp_runtime(module: &mut Module, cfg: &BtdpConfig, seed: u64) -> BtdpRuntime {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pool = cfg.pool_pages.max(1) as u32;
    let kept_n = cfg.kept_pages.clamp(1, cfg.pool_pages) as u32;
    // Four BTDPs per kept guard page gives the array enough variety.
    let array_len = kept_n * 4;

    // Choose the kept subset and per-entry (chunk, offset) pairs now,
    // at compile time.
    let mut indices: Vec<u32> = (0..pool).collect();
    indices.shuffle(&mut rng);
    let kept: Vec<u32> = indices[..kept_n as usize].to_vec();
    let freed: Vec<u32> = indices[kept_n as usize..].to_vec();
    let mut used_offsets: Vec<(u32, u32)> = Vec::new();
    let fresh_pair = |rng: &mut SmallRng, kept: &[u32], used: &mut Vec<(u32, u32)>| loop {
        let chunk = kept[rng.gen_range(0..kept.len())];
        let off = 8 * rng.gen_range(0..512u32);
        if !used.contains(&(chunk, off)) {
            used.push((chunk, off));
            return (chunk, off);
        }
    };
    let entries: Vec<(u32, u32)> = (0..array_len)
        .map(|_| fresh_pair(&mut rng, &kept, &mut used_offsets))
        .collect();
    let decoys: Vec<(u32, u32)> = (0..cfg.data_decoys as u32)
        .map(|_| fresh_pair(&mut rng, &kept, &mut used_offsets))
        .collect();

    let mut mb = ModuleBuilder::from_module(std::mem::take(module));
    let ptr_global = if cfg.naive_data_array {
        mb.global(PTR_GLOBAL, GlobalInit::Zero(8 * array_len), 8)
    } else {
        mb.global(PTR_GLOBAL, GlobalInit::Zero(8), 8)
    };
    let decoy_globals: Vec<GlobalId> = (0..cfg.data_decoys)
        .map(|d| mb.global(&format!("__r2c_btdp_decoy_{d}"), GlobalInit::Zero(8), 8))
        .collect();

    let mut f = mb.function(CTOR_NAME, 0);
    f.no_instrument();
    let chunks = f.alloca(8 * pool, 8);
    // 1. Allocate page chunks.
    let page_a = f.iconst(4096);
    let page_b = f.iconst(4096);
    let mut chunk_ptr: Vec<Val> = Vec::with_capacity(pool as usize);
    for i in 0..pool {
        let p = f.call_extern(ExternFn::Memalign, &[page_a, page_b]);
        f.store(chunks, (8 * i) as i32, p);
        chunk_ptr.push(p);
    }
    // 2. Free everything not kept; the kept chunks stay out of
    //    circulation (malloc never hands out live allocations).
    for &i in &freed {
        let p = f.load(chunks, (8 * i) as i32);
        f.call_extern(ExternFn::Free, &[p]);
    }
    // 3. The BTDP array.
    let arr = if cfg.naive_data_array {
        f.global_addr(ptr_global)
    } else {
        let sz = f.iconst(8 * array_len as i64);
        f.call_extern(ExternFn::Malloc, &[sz])
    };
    for (k, &(chunk, off)) in entries.iter().enumerate() {
        let base = f.load(chunks, (8 * chunk) as i32);
        let v = f.ptr_add(base, None, 1, off as i32);
        f.store(arr, (8 * k) as i32, v);
    }
    // 4. Decoys into the data section (never written to any stack).
    for (d, &(chunk, off)) in decoys.iter().enumerate() {
        let base = f.load(chunks, (8 * chunk) as i32);
        let v = f.ptr_add(base, None, 1, off as i32);
        let g = f.global_addr(decoy_globals[d]);
        f.store(g, 0, v);
    }
    // 5. Revoke permissions on the kept pages and publish the array.
    let len4096 = f.iconst(4096);
    let none = f.iconst(0);
    for &i in &kept {
        let base = f.load(chunks, (8 * i) as i32);
        f.call_extern(ExternFn::Mprotect, &[base, len4096, none]);
    }
    if !cfg.naive_data_array {
        let g = f.global_addr(ptr_global);
        f.store(g, 0, arr);
    }
    f.ret(None);
    f.finish();

    *module = mb.finish();
    BtdpRuntime {
        ptr_global,
        decoy_globals,
        array_len,
        ctor_name: CTOR_NAME.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_ir::{parse_module, verify_module};

    fn base_module() -> Module {
        parse_module("func @main(0) {\nentry:\n  %0 = const 0\n  ret %0\n}\n").unwrap()
    }

    #[test]
    fn injection_produces_valid_module() {
        let mut m = base_module();
        let rt = inject_btdp_runtime(&mut m, &BtdpConfig::default(), 42);
        verify_module(&m).unwrap();
        assert!(m.func_by_name(CTOR_NAME).is_some());
        assert!(m.global_by_name(PTR_GLOBAL).is_some());
        assert_eq!(rt.array_len, BtdpConfig::default().kept_pages as u32 * 4);
        assert_eq!(
            rt.decoy_globals.len(),
            BtdpConfig::default().data_decoys as usize
        );
        let ctor = m.func(m.func_by_name(CTOR_NAME).unwrap());
        assert!(
            ctor.no_instrument,
            "the constructor must not instrument itself"
        );
    }

    #[test]
    fn decoys_disjoint_from_array_entries() {
        // Re-run the compile-time choice logic and check pair
        // disjointness by examining the generated constructor: each
        // (chunk, offset) pair appears exactly once.
        let mut m = base_module();
        inject_btdp_runtime(&mut m, &BtdpConfig::default(), 7);
        let ctor = m.func(m.func_by_name(CTOR_NAME).unwrap());
        // Count ptradd instructions: array entries + decoys; all pairs
        // distinct means their (load offset, disp) pairs are distinct.
        let mut pairs = Vec::new();
        let blocks = &ctor.blocks;
        for b in blocks {
            for w in b.insts.windows(2) {
                if let (
                    (_, r2c_ir::Inst::Load { off, .. }),
                    (_, r2c_ir::Inst::PtrAdd { disp, .. }),
                ) = (&w[0], &w[1])
                {
                    pairs.push((*off, *disp));
                }
            }
        }
        let total = pairs.len();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), total, "duplicate (chunk, offset) pair");
    }

    #[test]
    fn naive_variant_skips_heap_array() {
        let mut m = base_module();
        let cfg = BtdpConfig {
            naive_data_array: true,
            ..BtdpConfig::default()
        };
        let rt = inject_btdp_runtime(&mut m, &cfg, 1);
        let g = m.global(rt.ptr_global);
        assert_eq!(g.init, GlobalInit::Zero(8 * rt.array_len));
    }

    #[test]
    fn different_seeds_choose_different_pages() {
        let texts: Vec<String> = [1u64, 2]
            .iter()
            .map(|&s| {
                let mut m = base_module();
                inject_btdp_runtime(&mut m, &BtdpConfig::default(), s);
                r2c_ir::print_module(&m)
            })
            .collect();
        assert_ne!(texts[0], texts[1]);
    }
}
