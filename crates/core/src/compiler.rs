//! The R²C compiler facade.

use r2c_check::CheckError;
use r2c_codegen::{link, mix_seed, CompileError, CompileOptions, FuncKind, LinkOptions, Program};
use r2c_ir::Module;
use r2c_vm::Image;

use crate::config::R2cConfig;
use crate::report::{CompileReport, PassTiming};
use crate::runtime::{inject_btdp_runtime, BtdpRuntime};

/// Runs `f`, appending its wall time to `timings` (when telemetry is
/// requested) under the given pass name.
fn timed<T>(
    timings: &mut Option<&mut Vec<PassTiming>>,
    pass: &'static str,
    f: impl FnOnce() -> T,
) -> T {
    let start = std::time::Instant::now();
    let out = f();
    if let Some(t) = timings.as_deref_mut() {
        t.push(PassTiming {
            pass,
            wall_us: start.elapsed().as_micros() as u64,
        });
    }
    out
}

/// A failed [`R2cCompiler::build`]: either the backend rejected the
/// module, or the `r2c-check` static analyzer found the emitted code in
/// violation of a checked invariant.
#[derive(Clone, Debug)]
pub enum BuildError {
    /// IR verification or lowering failed.
    Compile(CompileError),
    /// The static checker flagged the compiled output.
    Check {
        /// Which artifact was rejected: `"program"` or `"image"`.
        stage: &'static str,
        /// Every finding, in pass order.
        errors: Vec<CheckError>,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Compile(e) => write!(f, "{e}"),
            BuildError::Check { stage, errors } => {
                write!(
                    f,
                    "static checker rejected the {stage} ({} finding(s))",
                    errors.len()
                )?;
                for e in errors.iter().take(8) {
                    write!(f, "\n  {e}")?;
                }
                if errors.len() > 8 {
                    write!(f, "\n  ... and {} more", errors.len() - 8)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<CompileError> for BuildError {
    fn from(e: CompileError) -> BuildError {
        BuildError::Compile(e)
    }
}

/// Static information about one built variant, for reports and tests.
#[derive(Clone, Debug, Default)]
pub struct VariantInfo {
    /// Total text bytes of the compiled functions (before booby traps).
    pub text_bytes: u64,
    /// Number of call sites instrumented with BTRA windows.
    pub btra_sites: u32,
    /// Number of BTDP stack stores across all functions.
    pub btdp_stores: u32,
    /// Number of booby-trap functions interspersed in the text.
    pub booby_traps: u32,
    /// Number of BTDP array entries (0 when BTDPs are disabled).
    pub btdp_array_len: u32,
    /// Details of the injected BTDP runtime, if any.
    pub btdp_runtime: Option<BtdpRuntime>,
}

/// Compiles IR modules into R²C-protected images.
///
/// The compiler is deterministic: the same `(module, config)` always
/// produces the same image; changing only the seed produces a fresh
/// diversified variant.
#[derive(Clone, Debug)]
pub struct R2cCompiler {
    config: R2cConfig,
}

impl R2cCompiler {
    /// Creates a compiler with the given configuration.
    pub fn new(config: R2cConfig) -> R2cCompiler {
        R2cCompiler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &R2cConfig {
        &self.config
    }

    /// Compiles and links `module` into an image.
    pub fn build(&self, module: &Module) -> Result<Image, BuildError> {
        self.build_with_info(module).map(|(image, _)| image)
    }

    /// Compiles and links, also returning static variant information.
    ///
    /// When [`R2cConfig::check`] is set, the `r2c-check` static
    /// analyzer validates both the pre-link program and the linked
    /// image; any finding fails the build with
    /// [`BuildError::Check`].
    pub fn build_with_info(&self, module: &Module) -> Result<(Image, VariantInfo), BuildError> {
        self.build_inner(module, &mut None)
    }

    /// Like [`R2cCompiler::build_with_info`], additionally collecting
    /// compile telemetry — per-pass wall time, per-function
    /// instrumentation counts and link-time code growth — into a
    /// [`CompileReport`].
    ///
    /// Telemetry collection only *observes* the passes; the produced
    /// image is identical to the one [`R2cCompiler::build`] returns for
    /// the same `(module, config)`.
    pub fn build_with_report(
        &self,
        module: &Module,
    ) -> Result<(Image, VariantInfo, CompileReport), BuildError> {
        let mut report = CompileReport {
            seed: self.config.seed,
            ..CompileReport::default()
        };
        let (image, info) = self.build_inner(module, &mut Some(&mut report))?;
        report.record_image(&image);
        Ok((image, info, report))
    }

    /// Shared build pipeline; `report` is `Some` when telemetry was
    /// requested.
    fn build_inner(
        &self,
        module: &Module,
        report: &mut Option<&mut CompileReport>,
    ) -> Result<(Image, VariantInfo), BuildError> {
        let mut timings: Option<Vec<PassTiming>> = report.as_ref().map(|_| Vec::new());
        let mut tref = timings.as_mut();
        let (program, opts, rt) = self.compile_program_timed(module, &mut tref)?;
        if self.config.check {
            let errors = timed(&mut tref, "check-program", || {
                r2c_check::check_program(&program, &opts.diversify)
            });
            if !errors.is_empty() {
                if let Some(r) = report.as_deref_mut() {
                    r.passes = timings.unwrap_or_default();
                    r.record_program(&program);
                }
                return Err(BuildError::Check {
                    stage: "program",
                    errors,
                });
            }
        }
        let image = timed(&mut tref, "link", || {
            link(
                &program,
                &LinkOptions::from_config(&opts.diversify, opts.seed),
            )
        });
        let check_image_errors = if self.config.check {
            timed(&mut tref, "check-image", || {
                r2c_check::check_image(&image, &opts.diversify)
            })
        } else {
            Vec::new()
        };
        // Decode translation validation only makes sense on an image
        // that already passed the structural checks.
        let check_decode_errors = if self.config.check_decode && check_image_errors.is_empty() {
            timed(&mut tref, "check-decode", || {
                r2c_check::check_decode(&image)
            })
        } else {
            Vec::new()
        };
        if let Some(r) = report.as_deref_mut() {
            r.passes = timings.unwrap_or_default();
            r.record_program(&program);
        }
        if !check_image_errors.is_empty() {
            return Err(BuildError::Check {
                stage: "image",
                errors: check_image_errors,
            });
        }
        if !check_decode_errors.is_empty() {
            return Err(BuildError::Check {
                stage: "decode",
                errors: check_decode_errors,
            });
        }
        let mut info = VariantInfo {
            text_bytes: program.text_bytes(),
            booby_traps: program.booby_trap_funcs,
            btdp_array_len: rt.as_ref().map(|r| r.array_len).unwrap_or(0),
            btdp_runtime: rt,
            ..VariantInfo::default()
        };
        for f in &program.funcs {
            if f.kind == FuncKind::Normal {
                info.btra_sites += f.btra_sites;
                info.btdp_stores += f.btdp_stores;
            }
        }
        Ok((image, info))
    }

    /// Compiles to the pre-link [`Program`] (exposed so tests and the
    /// security analysis can inspect relocations, e.g. to verify the
    /// BTRA properties of §4.1).
    pub fn compile_program(
        &self,
        module: &Module,
    ) -> Result<(Program, CompileOptions, Option<BtdpRuntime>), CompileError> {
        self.compile_program_timed(module, &mut None)
    }

    /// [`R2cCompiler::compile_program`] with optional per-pass timing.
    fn compile_program_timed(
        &self,
        module: &Module,
        timings: &mut Option<&mut Vec<PassTiming>>,
    ) -> Result<(Program, CompileOptions, Option<BtdpRuntime>), CompileError> {
        // Verify the *input* module up front so IR errors are reported
        // against the user's code, not the runtime-injected clone
        // (which `r2c_codegen::compile` re-verifies).
        timed(timings, "verify", || r2c_ir::verify_module(module)).map_err(CompileError::Verify)?;
        let mut m = module.clone();
        let mut diversify = self.config.diversify;
        let mut ctors = Vec::new();
        let mut runtime = None;
        if let Some(mut b) = diversify.btdp {
            let rt = timed(timings, "inject-btdp", || {
                inject_btdp_runtime(&mut m, &b, mix_seed(self.config.seed, 0xD07))
            });
            b.ptr_global = rt.ptr_global.0;
            b.array_len = rt.array_len;
            diversify.btdp = Some(b);
            ctors.push(rt.ctor_name.clone());
            runtime = Some(rt);
        }
        let opts = CompileOptions {
            diversify,
            seed: self.config.seed,
            entry: "main".into(),
            ctors,
        };
        let program = timed(timings, "lower", || r2c_codegen::compile(&m, &opts))?;
        Ok((program, opts, runtime))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::R2cConfig;
    use r2c_ir::parse_module;
    use r2c_vm::{ExitStatus, MachineKind, Vm, VmConfig};

    const SRC: &str = r#"
func @work(1) {
entry:
  %0 = param 0
  %1 = alloca 16 align 8
  store %1 + 0, %0
  %2 = load %1 + 0
  %3 = add %2, %2
  ret %3
}
func @main(0) {
entry:
  %0 = const 21
  %1 = call @work(%0)
  %2 = extern print(%1)
  ret %1
}
"#;

    #[test]
    fn full_build_runs_and_prints() {
        let m = parse_module(SRC).unwrap();
        let (image, info) = R2cCompiler::new(R2cConfig::full(5))
            .build_with_info(&m)
            .unwrap();
        let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
        let out = vm.run();
        assert_eq!(out.status, ExitStatus::Exited(42));
        assert_eq!(vm.output, vec![42]);
        assert!(info.btra_sites >= 2, "print + work call sites: {info:?}");
        assert!(info.booby_traps > 0);
        assert!(info.btdp_array_len > 0);
    }

    #[test]
    fn baseline_has_no_instrumentation() {
        let m = parse_module(SRC).unwrap();
        let (_, info) = R2cCompiler::new(R2cConfig::baseline(5))
            .build_with_info(&m)
            .unwrap();
        assert_eq!(info.btra_sites, 0);
        assert_eq!(info.btdp_stores, 0);
        assert_eq!(info.booby_traps, 0);
    }

    #[test]
    fn btdp_constructor_creates_guard_pages() {
        let m = parse_module(SRC).unwrap();
        let (image, info) = R2cCompiler::new(R2cConfig::full(9))
            .build_with_info(&m)
            .unwrap();
        let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
        let out = vm.run();
        assert!(out.status.is_exit());
        // The kept pages must now be guard pages: the published BTDP
        // array entries all point into permission-less pages.
        let ptr_addr = image.func_addr("__r2c_btdp_ptr");
        let arr = vm.mem.peek_u64(ptr_addr);
        assert!(arr >= image.layout.heap_base, "array must live on the heap");
        let len = info.btdp_array_len as u64;
        for k in 0..len {
            let btdp = vm.mem.peek_u64(arr + 8 * k);
            let perms = vm.perms_at(btdp).expect("BTDP target mapped");
            assert_eq!(perms, r2c_vm::Perms::NONE, "BTDP {k} not a guard page");
        }
    }

    #[test]
    fn report_captures_passes_and_instrumentation() {
        let m = parse_module(SRC).unwrap();
        // Force the checkers on: they default off in release builds,
        // and the test pins the full pass list.
        let cfg = R2cConfig::full(5).with_check(true).with_check_decode(true);
        let (image, info, report) = R2cCompiler::new(cfg).build_with_report(&m).unwrap();
        // Telemetry must not change the build product.
        let plain = R2cCompiler::new(cfg).build(&m).unwrap();
        assert_eq!(image.insn_addrs, plain.insn_addrs);
        assert_eq!(image.entry, plain.entry);
        // Every pipeline stage is timed, in execution order.
        let names: Vec<&str> = report.passes.iter().map(|p| p.pass).collect();
        assert_eq!(
            names,
            [
                "verify",
                "inject-btdp",
                "lower",
                "check-program",
                "link",
                "check-image",
                "check-decode"
            ]
        );
        // Per-function counts agree with the aggregate VariantInfo.
        let (stores, sites): (u32, u32) = report
            .funcs
            .iter()
            .filter(|f| f.kind == "normal")
            .fold((0, 0), |(s, b), f| (s + f.btdp_stores, b + f.btra_sites));
        assert_eq!(stores, info.btdp_stores);
        assert_eq!(sites, info.btra_sites);
        assert_eq!(report.booby_traps, info.booby_traps);
        assert_eq!(report.seed, 5);
        // Full R²C inserts NOPs and prolog traps, and link-time booby
        // traps plus padding grow the text.
        let nops: u32 = report.funcs.iter().map(|f| f.nops).sum();
        let traps: u32 = report.funcs.iter().map(|f| f.traps).sum();
        assert!(nops > 0, "expected call-site NOPs: {report:?}");
        assert!(traps > 0, "expected prolog traps: {report:?}");
        assert!(report.image_insns > 0);
        assert!(
            report.link_growth_bytes() > 0,
            "booby traps must grow the image: {report:?}"
        );
        let j = report.to_json();
        assert!(j.contains("\"pass\": \"lower\""));
        assert!(j.contains("\"name\": \"main\""));
    }

    #[test]
    fn baseline_report_shows_no_instrumentation() {
        let m = parse_module(SRC).unwrap();
        let (_, _, report) = R2cCompiler::new(R2cConfig::baseline(3))
            .build_with_report(&m)
            .unwrap();
        assert!(report.passes.iter().all(|p| p.pass != "inject-btdp"));
        for f in &report.funcs {
            assert_eq!(f.nops, 0, "{}", f.name);
            assert_eq!(f.btdp_stores, 0, "{}", f.name);
            assert_eq!(f.btra_sites, 0, "{}", f.name);
        }
        assert_eq!(report.booby_traps, 0);
    }

    #[test]
    fn variants_differ_across_seeds() {
        let m = parse_module(SRC).unwrap();
        let a = R2cCompiler::new(R2cConfig::full(1)).build(&m).unwrap();
        let b = R2cCompiler::new(R2cConfig::full(2)).build(&m).unwrap();
        assert_ne!(a.func_addr("main"), b.func_addr("main"));
        assert_ne!(
            a.func_addr("work") - a.layout.text_base,
            b.func_addr("work") - b.layout.text_base,
            "intra-section layout must differ, not just the ASLR base"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let m = parse_module(SRC).unwrap();
        let a = R2cCompiler::new(R2cConfig::full(33)).build(&m).unwrap();
        let b = R2cCompiler::new(R2cConfig::full(33)).build(&m).unwrap();
        assert_eq!(a.insn_addrs, b.insn_addrs);
        assert_eq!(a.entry, b.entry);
    }
}
