//! R²C configuration presets matching the paper's evaluation
//! configurations.

use r2c_codegen::{BtdpConfig, BtraConfig, BtraMode, DiversifyConfig};

/// One isolated R²C component, as measured in Table 1 / §6.2.1–6.2.3.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Component {
    /// BTRAs with the push setup sequence (plus the 1–9 NOPs of the
    /// §6.2.1 configuration).
    Push,
    /// BTRAs with the AVX2 setup sequence (same NOP configuration).
    Avx,
    /// Booby-trapped data pointers only (0–5 per function).
    Btdp,
    /// Prolog trap insertion only (1–5 traps).
    Prolog,
    /// Layout randomization only: stack-slot shuffling, global-variable
    /// shuffling, register-allocation randomization.
    Layout,
    /// Offset-invariant addressing only (the §6.2.1 OIA measurement).
    Oia,
}

impl Component {
    /// All components in Table 1 row order.
    pub const TABLE1: [Component; 5] = [
        Component::Push,
        Component::Avx,
        Component::Btdp,
        Component::Prolog,
        Component::Layout,
    ];

    /// Display name matching Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Component::Push => "Push",
            Component::Avx => "AVX",
            Component::Btdp => "BTDP",
            Component::Prolog => "Prolog",
            Component::Layout => "Layout",
            Component::Oia => "OIA",
        }
    }
}

/// Full R²C configuration: diversification settings plus the master
/// seed identifying one build variant.
#[derive(Clone, Copy, Debug)]
pub struct R2cConfig {
    /// Diversification settings handed to the backend. The BTDP
    /// `ptr_global`/`array_len` fields are filled in by
    /// [`R2cCompiler`](crate::R2cCompiler) after it injects the runtime.
    pub diversify: DiversifyConfig,
    /// Master seed. Recompiling with a different seed yields a
    /// different program variant (the paper recompiles SPEC with a
    /// fresh seed per benchmark execution, §6.2).
    pub seed: u64,
    /// Run the `r2c-check` static analyzer over the compiled program
    /// and linked image during [`R2cCompiler::build`]
    /// (crate::R2cCompiler::build); a finding fails the build. On by
    /// default in debug builds (so every test exercises it), off in
    /// release builds (benchmarks measure codegen, not validation).
    pub check: bool,
    /// Run the decode translation validator over the linked image
    /// during the build: symbolically prove every decoded program the
    /// VM could build (all machine models, fusion on and off)
    /// equivalent to the image's reference semantics. Same debug/release
    /// default as `check` (the validator stays out of the release hot
    /// path); the fuzz matrix forces it on.
    pub check_decode: bool,
}

impl R2cConfig {
    /// The baseline: same compiler, R²C disabled (§6.2).
    pub fn baseline(seed: u64) -> R2cConfig {
        R2cConfig {
            diversify: DiversifyConfig::none(),
            seed,
            check: cfg!(debug_assertions),
            check_decode: cfg!(debug_assertions),
        }
    }

    /// Full protection (the Figure 6 configuration).
    pub fn full(seed: u64) -> R2cConfig {
        R2cConfig {
            diversify: DiversifyConfig::full(),
            seed,
            check: cfg!(debug_assertions),
            check_decode: cfg!(debug_assertions),
        }
    }

    /// Full protection but with the push BTRA setup instead of AVX2.
    pub fn full_push(seed: u64) -> R2cConfig {
        let mut c = R2cConfig::full(seed);
        c.diversify.btra = Some(BtraConfig {
            mode: BtraMode::Push,
            ..BtraConfig::default()
        });
        c
    }

    /// An isolated component (Table 1 rows; "we disabled other
    /// diversification measures", §6.2.1).
    pub fn component(c: Component, seed: u64) -> R2cConfig {
        let none = DiversifyConfig::none();
        let diversify = match c {
            Component::Push => DiversifyConfig {
                btra: Some(BtraConfig {
                    mode: BtraMode::Push,
                    total: 10,
                    omit_vzeroupper: false,
                }),
                nop_insertion: Some((1, 9)),
                booby_trap_funcs: 64,
                ..none
            },
            Component::Avx => DiversifyConfig {
                btra: Some(BtraConfig {
                    mode: BtraMode::Avx2,
                    total: 10,
                    omit_vzeroupper: false,
                }),
                nop_insertion: Some((1, 9)),
                booby_trap_funcs: 64,
                ..none
            },
            Component::Btdp => DiversifyConfig {
                btdp: Some(BtdpConfig::default()),
                ..none
            },
            Component::Prolog => DiversifyConfig {
                prolog_traps: Some((1, 5)),
                ..none
            },
            Component::Layout => DiversifyConfig {
                stack_slot_rand: true,
                global_shuffle: true,
                regalloc_rand: true,
                ..none
            },
            Component::Oia => DiversifyConfig {
                offset_invariant_addressing: true,
                ..none
            },
        };
        R2cConfig {
            diversify,
            seed,
            check: cfg!(debug_assertions),
            check_decode: cfg!(debug_assertions),
        }
    }

    /// Same configuration, different variant seed.
    pub fn with_seed(mut self, seed: u64) -> R2cConfig {
        self.seed = seed;
        self
    }

    /// Same configuration, static checker forced on or off.
    pub fn with_check(mut self, check: bool) -> R2cConfig {
        self.check = check;
        self
    }

    /// Same configuration, decode translation validator forced on or
    /// off.
    pub fn with_check_decode(mut self, check_decode: bool) -> R2cConfig {
        self.check_decode = check_decode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_isolated() {
        let push = R2cConfig::component(Component::Push, 1).diversify;
        assert!(push.btra.is_some() && push.btdp.is_none() && !push.func_shuffle);
        let btdp = R2cConfig::component(Component::Btdp, 1).diversify;
        assert!(btdp.btra.is_none() && btdp.btdp.is_some());
        let layout = R2cConfig::component(Component::Layout, 1).diversify;
        assert!(layout.stack_slot_rand && layout.global_shuffle && layout.regalloc_rand);
        assert!(layout.btra.is_none() && layout.btdp.is_none());
    }

    #[test]
    fn table1_order() {
        let names: Vec<_> = Component::TABLE1.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["Push", "AVX", "BTDP", "Prolog", "Layout"]);
    }

    #[test]
    fn full_push_uses_push_mode() {
        let c = R2cConfig::full_push(3);
        assert_eq!(c.diversify.btra.unwrap().mode, BtraMode::Push);
    }
}
