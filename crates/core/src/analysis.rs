//! Security analysis helpers: AOCR-style pointer clustering and the
//! closed-form probability estimates of paper §7.2.

use r2c_vm::image::Region;
use r2c_vm::SectionLayout;

/// A cluster of nearby 64-bit values, as produced by AOCR's statistical
/// value-range analysis (§2.3/§4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cluster {
    /// Smallest member.
    pub min: u64,
    /// Largest member.
    pub max: u64,
    /// All members (with duplicates), sorted.
    pub members: Vec<u64>,
}

impl Cluster {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the cluster has no members (never produced by
    /// [`cluster_values`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Groups pointer-looking values into clusters by address proximity.
///
/// The AOCR paper observes that, in a 64-bit address space, the values
/// found on the stack fall into a small number of clusters (text
/// pointers, data pointers, heap pointers, stack pointers), because the
/// sections are gigabytes apart. Two values belong to the same cluster
/// when they are within `gap` of each other (default `1 << 32`).
///
/// Returned clusters are sorted by descending size — the AOCR heuristic
/// identifies heap pointers as "typically the third largest cluster".
pub fn cluster_values(words: &[u64], gap: u64) -> Vec<Cluster> {
    // Discard values that cannot be userspace pointers.
    let mut vals: Vec<u64> = words
        .iter()
        .copied()
        .filter(|&v| (0x1_0000..0x8000_0000_0000).contains(&v))
        .collect();
    vals.sort_unstable();
    let mut clusters: Vec<Cluster> = Vec::new();
    for v in vals {
        match clusters.last_mut() {
            Some(c) if v - c.max <= gap => {
                c.max = v;
                c.members.push(v);
            }
            _ => clusters.push(Cluster {
                min: v,
                max: v,
                members: vec![v],
            }),
        }
    }
    clusters.sort_by_key(|c| std::cmp::Reverse(c.members.len()));
    clusters
}

/// Ground-truth classification of a cluster against the real layout
/// (evaluation only; the attacker does not have `layout`).
pub fn dominant_region(layout: &SectionLayout, c: &Cluster) -> Option<Region> {
    let mut counts = [0usize; 4];
    for &v in &c.members {
        if let Some(r) = layout.region_of(v) {
            counts[r as usize] += 1;
        }
    }
    let best = (0..4).max_by_key(|&i| counts[i])?;
    if counts[best] == 0 {
        return None;
    }
    Some(match best {
        0 => Region::Text,
        1 => Region::Data,
        2 => Region::Heap,
        _ => Region::Stack,
    })
}

/// Shannon entropy (in bits) of an empirical distribution of discrete
/// observations — e.g. the return-address slot position across
/// diversified variants. An attacker needs ~`2^H` guesses to cover the
/// distribution; undiversified builds have H = 0.
pub fn shannon_entropy<T: std::hash::Hash + Eq>(samples: &[T]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut counts: std::collections::HashMap<&T, usize> = std::collections::HashMap::new();
    for s in samples {
        *counts.entry(s).or_default() += 1;
    }
    let n = samples.len() as f64;
    -counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Probability of guessing the true return address among `r` BTRAs:
/// `1 / (r + 1)` (§7.2.1).
pub fn p_guess_return_address(r: u32) -> f64 {
    1.0 / (r as f64 + 1.0)
}

/// Probability of locating all `n` return addresses needed for a ROP
/// chain: `(1 / (r + 1))^n` (§7.2.1). With ten BTRAs and four return
/// addresses this is ≈ 0.00007, the paper's example.
pub fn p_locate_chain(r: u32, n: u32) -> f64 {
    p_guess_return_address(r).powi(n as i32)
}

/// Probability of randomly picking a benign heap pointer among `h`
/// benign pointers and `b` BTDPs: `h / (h + b)` (§7.2.3).
pub fn p_pick_benign_heap_pointer(h: u64, b: u64) -> f64 {
    if h + b == 0 {
        return 0.0;
    }
    h as f64 / (h + b) as f64
}

/// Expected number of BTDPs in a leak of `frames` stack frames when
/// each function plants `0..=max_per_fn` uniformly (§7.2.3:
/// `B = E(X) * S`).
pub fn expected_btdps_in_leak(max_per_fn: u8, frames: u32) -> f64 {
    (max_per_fn as f64 / 2.0) * frames as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_separates_regions() {
        // Text-ish, heap-ish and stack-ish values.
        let words = vec![
            0x40_1000,
            0x40_2000,
            0x40_3000,
            0x10_0000_1000,
            0x10_0000_2000,
            0x7fff_f000_0000,
            0x7fff_f000_0100,
            0x7fff_f000_0200,
            0x7fff_f000_0300,
            0, // non-pointer noise
            42,
        ];
        let clusters = cluster_values(&words, 1 << 32);
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0].len(), 4, "stack cluster is biggest");
        assert!(clusters.iter().any(|c| c.min == 0x40_1000 && c.len() == 3));
    }

    #[test]
    fn duplicate_values_counted() {
        let words = vec![0x10_0000_0000; 5];
        let clusters = cluster_values(&words, 1 << 32);
        assert_eq!(clusters[0].len(), 5);
    }

    #[test]
    fn paper_probability_example() {
        // §7.2.1: ten BTRAs, four return addresses → ≈ 0.00007.
        let p = p_locate_chain(10, 4);
        assert!((p - 0.00007).abs() < 0.00001, "{p}");
        assert!((p_guess_return_address(10) - 1.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn btdp_dilution() {
        assert!((p_pick_benign_heap_pointer(10, 10) - 0.5).abs() < 1e-12);
        assert_eq!(p_pick_benign_heap_pointer(0, 0), 0.0);
        // §7.2.3: E(B) = max/2 per frame.
        assert!((expected_btdps_in_leak(5, 8) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_uniform_and_constant() {
        assert_eq!(shannon_entropy::<u32>(&[]), 0.0);
        assert_eq!(shannon_entropy(&[7, 7, 7, 7]), 0.0);
        let uniform: Vec<u32> = (0..8).collect();
        assert!((shannon_entropy(&uniform) - 3.0).abs() < 1e-12);
        let half = [1, 1, 2, 2];
        assert!((shannon_entropy(&half) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dominant_region_ground_truth() {
        let layout = SectionLayout {
            text_base: 0x40_0000,
            text_end: 0x50_0000,
            data_base: 0x6000_0000,
            data_end: 0x6010_0000,
            heap_base: 0x10_0000_0000,
            heap_size: 1 << 28,
            stack_top: 0x7fff_ffff_0000,
            stack_size: 1 << 20,
        };
        let c = Cluster {
            min: 0x10_0000_1000,
            max: 0x10_0000_9000,
            members: vec![0x10_0000_1000, 0x10_0000_9000],
        };
        assert_eq!(dominant_region(&layout, &c), Some(Region::Heap));
    }
}
