//! # r2c-core — Reactive and Reflective Camouflage
//!
//! The primary contribution of the paper, assembled from the substrate
//! crates: a compiler front end ([`R2cCompiler`]) that takes an IR
//! module and produces a diversified, booby-trapped program image.
//!
//! R²C combines (paper §4):
//!
//! * **Booby-trapped return addresses (BTRAs)** — every call site
//!   surrounds its return address with addresses of booby-trap
//!   functions, randomizing the return address's position within the
//!   frame and camouflaging it among identical-looking values.
//! * **Booby-trapped data pointers (BTDPs)** — a startup constructor
//!   scatters guard pages across the heap; functions plant pointers
//!   into them among the benign heap pointers on the stack, poisoning
//!   AOCR's value-range analysis.
//! * **Code randomization** — function shuffling with interspersed
//!   booby-trap functions, NOP insertion at call sites, trap insertion
//!   in prologs, register-allocation randomization — breaking the
//!   return-address → function-address → gadget inference chain.
//! * **Data randomization** — global-variable shuffling with padding,
//!   stack-slot randomization.
//!
//! The [`analysis`] module provides the closed-form security estimates
//! of §7.2 and the pointer-cluster analysis AOCR's profiling stage uses,
//! so that the measured attack outcomes can be checked against theory.
//!
//! ## Example
//!
//! ```
//! use r2c_core::{R2cCompiler, R2cConfig};
//! use r2c_vm::{MachineKind, Vm, VmConfig};
//!
//! let src = r#"
//! func @main(0) {
//! entry:
//!   %0 = const 1234
//!   %1 = extern print(%0)
//!   ret %0
//! }
//! "#;
//! let module = r2c_ir::parse_module(src).unwrap();
//! let image = R2cCompiler::new(R2cConfig::full(99)).build(&module).unwrap();
//! let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
//! let out = vm.run();
//! assert!(out.status.is_exit());
//! assert_eq!(vm.output, vec![1234]);
//! ```

pub mod analysis;
pub mod compiler;
pub mod config;
pub mod differential;
pub mod pool;
pub mod report;
pub mod runtime;
pub mod stats;

pub use compiler::{BuildError, R2cCompiler, VariantInfo};
pub use config::{Component, R2cConfig};
pub use differential::{diff_against_reference, observe_variant, VariantObservation};
pub use pool::{PoolStats, PooledVariant, TakeKind, VariantPool};
pub use report::{coverage_bucket, CompileReport, FuncReport, PassTiming};

// Re-export the names downstream users need most, so that `r2c-core`
// works as the single entry point the README advertises.
pub use r2c_check::{check_image, check_program, CheckError, CheckKind};
pub use r2c_codegen::{BtdpConfig, BtraConfig, BtraMode, CompileError, DiversifyConfig};
pub use r2c_vm::{ExitStatus, Image, MachineKind, Vm, VmConfig};
