//! Small statistics toolkit for the Monte-Carlo security measurements
//! and the performance reports: summary statistics, geometric means,
//! and Wilson score intervals for the measured attack probabilities,
//! so "0 successes in N trials" can be reported as a bound rather than
//! as a bare zero.

/// Summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median.
    pub median: f64,
}

/// Computes summary statistics.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn summarize(xs: &[f64]) -> Summary {
    assert!(!xs.is_empty(), "empty sample");
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    Summary {
        n,
        mean,
        stddev: var.sqrt(),
        min: sorted[0],
        max: sorted[n - 1],
        median,
    }
}

/// Geometric mean (all inputs must be positive).
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let s: f64 = xs.iter().map(|x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Wilson score interval for a binomial proportion at ~95% confidence
/// (z = 1.96). Returns `(low, high)`.
///
/// Used to report measured attack-success probabilities: observing 0
/// successes in 40 trials bounds the true rate below ≈ 8.8% rather
/// than proving it zero — matching the paper's probabilistic security
/// framing (§7.2.1).
pub fn wilson_interval(successes: u32, trials: u32) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Expected number of Bernoulli trials until first success (1/p), the
/// "probes until the attacker gets lucky" metric.
pub fn expected_trials_to_success(p: f64) -> f64 {
    if p <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn single_sample() {
        let s = summarize(&[7.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn geometric_mean_matches_known() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn wilson_zero_successes() {
        // 0/40 successes: true rate bounded below ~0.088.
        let (lo, hi) = wilson_interval(0, 40);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.05 && hi < 0.10, "{hi}");
    }

    #[test]
    fn wilson_half() {
        let (lo, hi) = wilson_interval(50, 100);
        assert!(lo < 0.5 && hi > 0.5);
        assert!(hi - lo < 0.2);
    }

    #[test]
    fn wilson_degenerate() {
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
        let (_, hi) = wilson_interval(10, 10);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn expected_trials() {
        assert_eq!(expected_trials_to_success(0.5), 2.0);
        assert_eq!(expected_trials_to_success(0.0), f64::INFINITY);
        // The paper's example: P = (1/11)^4 ⇒ ~14641 expected attempts.
        let p = crate::analysis::p_locate_chain(10, 4);
        assert!((expected_trials_to_success(p) - 14641.0).abs() < 1.0);
    }
}
