//! Differential-execution entry point: one compiled variant's
//! observable behavior, and its comparison against the reference
//! interpreter.
//!
//! This is the oracle core of the `r2c-fuzz` subsystem (and of the
//! hand-written regression tests): a module's *meaning* is defined by
//! [`r2c_ir::interpret`], and every compiled + diversified variant —
//! any preset, component config, machine and seed — must reproduce it
//! exactly. "Observable behavior" is
//!
//! * the exit status (return value of `main`, or the fault),
//! * the output stream (`print`/`putchar` externs), and
//! * the final contents of the module's data globals (the only memory
//!   whose layout both worlds agree on; function-pointer globals are
//!   excluded because code addresses legitimately differ),
//!
//! plus **`r2c-check` cleanliness**: the static analyzer must accept
//! the compiled program and linked image with zero findings. A
//! divergence in any of these is a compiler bug (or an injected one —
//! see `r2c_codegen::InjectedFault`, which tests use to prove the
//! oracle actually catches miscompiles).

use r2c_ir::{GlobalInit, InterpResult, Module};
use r2c_vm::{Detection, EdgeStats, ExecStats, ExitStatus, MachineKind, Vm, VmConfig};

use crate::compiler::{BuildError, R2cCompiler};
use crate::config::R2cConfig;
use crate::report::CompileReport;

/// Everything the oracle observes about one compiled execution.
///
/// Beyond the semantic surface the differential comparison uses
/// (status, output, globals), an observation carries the telemetry the
/// coverage-guided fuzzer feeds on: the compile report, the full
/// [`ExecStats`], the engine-edge counters, the decoded-op (fusion
/// pattern / lowering template) histogram, and any detection events.
#[derive(Clone, Debug)]
pub struct VariantObservation {
    /// How the run ended.
    pub status: ExitStatus,
    /// Guest output stream.
    pub output: Vec<i64>,
    /// Final bytes of each comparable (non-function-pointer) module
    /// global, as `(name, bytes)`.
    pub globals: Vec<(String, Vec<u8>)>,
    /// Dynamically executed machine instructions.
    pub insns: u64,
    /// Full execution statistics of the run.
    pub stats: ExecStats,
    /// Engine-path edge counters (block runs, rollbacks, budget
    /// handoffs).
    pub edges: EdgeStats,
    /// Decoded-op kind histogram of the variant's program.
    pub op_kinds: Vec<(&'static str, u64)>,
    /// Reactive-defense detection events recorded during the run.
    pub detections: Vec<Detection>,
    /// Compile telemetry of the build that produced the variant.
    pub report: CompileReport,
}

/// Compiles `module` under `cfg` (static checker forced on) and runs it
/// on `machine`, capturing the observation.
///
/// Returns `Err` if the build fails — including when `r2c-check`
/// rejects the emitted code, which the oracle treats as a divergence in
/// its own right.
pub fn observe_variant(
    module: &Module,
    cfg: R2cConfig,
    machine: MachineKind,
    insn_budget: u64,
) -> Result<VariantObservation, BuildError> {
    let (image, _info, report) =
        R2cCompiler::new(cfg.with_check(true)).build_with_report(module)?;
    let mut vm_cfg = VmConfig::new(machine.config());
    vm_cfg.insn_budget = insn_budget;
    let mut vm = Vm::new(&image, vm_cfg);
    let out = vm.run();
    let mut globals = Vec::new();
    for g in &module.globals {
        if matches!(g.init, GlobalInit::FuncPtr(_)) {
            continue;
        }
        let sym = image
            .symbol(&g.name)
            .unwrap_or_else(|| panic!("global {:?} has no image symbol", g.name));
        let mut buf = vec![0u8; g.init.size() as usize];
        vm.mem.peek(sym.addr, &mut buf);
        globals.push((g.name.clone(), buf));
    }
    Ok(VariantObservation {
        status: out.status,
        output: vm.output.clone(),
        globals,
        insns: out.stats.instructions,
        stats: vm.stats(),
        edges: vm.edge_stats(),
        op_kinds: vm.op_kind_counts(),
        detections: vm.detections().to_vec(),
        report,
    })
}

/// Compares a compiled observation against the reference
/// interpretation; returns human-readable mismatch descriptions (empty
/// = the variant agrees with the reference).
pub fn diff_against_reference(
    module: &Module,
    reference: &InterpResult,
    obs: &VariantObservation,
) -> Vec<String> {
    let mut diffs = Vec::new();
    if obs.status != ExitStatus::Exited(reference.ret) {
        diffs.push(format!(
            "exit status: compiled {:?}, reference Exited({})",
            obs.status, reference.ret
        ));
    }
    if obs.output != reference.output {
        diffs.push(describe_output_diff(&reference.output, &obs.output));
    }
    // Reference globals are indexed by declaration order; pair them
    // with the observation's (name, bytes) list by walking the module.
    let mut obs_iter = obs.globals.iter();
    for (gi, g) in module.globals.iter().enumerate() {
        if matches!(g.init, GlobalInit::FuncPtr(_)) {
            continue;
        }
        let Some((name, bytes)) = obs_iter.next() else {
            diffs.push(format!("global {:?} missing from observation", g.name));
            break;
        };
        debug_assert_eq!(name, &g.name);
        let want = &reference.globals[gi];
        if bytes != want {
            let at = bytes
                .iter()
                .zip(want)
                .position(|(a, b)| a != b)
                .unwrap_or(want.len().min(bytes.len()));
            diffs.push(format!(
                "global {:?} differs at byte {at}: compiled {:#04x?} vs reference {:#04x?}",
                g.name,
                bytes.get(at).copied().unwrap_or(0),
                want.get(at).copied().unwrap_or(0),
            ));
        }
    }
    diffs
}

fn describe_output_diff(want: &[i64], got: &[i64]) -> String {
    if want.len() != got.len() {
        return format!(
            "output length: compiled {} values, reference {}",
            got.len(),
            want.len()
        );
    }
    let at = want
        .iter()
        .zip(got)
        .position(|(a, b)| a != b)
        .expect("equal-length unequal outputs differ somewhere");
    format!("output[{at}]: compiled {}, reference {}", got[at], want[at])
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_ir::{interpret, parse_module};

    const SRC: &str = r#"
global @counter zero 16 align 8
func @main(0) {
entry:
  %0 = addrof @counter
  %1 = const 41
  store %0 + 0, %1
  %2 = load %0 + 0
  %3 = const 1
  %4 = add %2, %3
  store %0 + 8, %4
  %5 = extern print(%4)
  ret %4
}
"#;

    #[test]
    fn clean_variant_agrees_everywhere() {
        let m = parse_module(SRC).unwrap();
        let reference = interpret(&m, "main", 1_000_000).unwrap();
        for cfg in [R2cConfig::baseline(3), R2cConfig::full(3)] {
            let obs = observe_variant(&m, cfg, MachineKind::EpycRome, 100_000_000).expect("build");
            let diffs = diff_against_reference(&m, &reference, &obs);
            assert!(diffs.is_empty(), "unexpected divergence: {diffs:?}");
            assert_eq!(obs.status, ExitStatus::Exited(42));
        }
    }

    #[test]
    fn global_contents_are_compared() {
        let m = parse_module(SRC).unwrap();
        let reference = interpret(&m, "main", 1_000_000).unwrap();
        let mut obs =
            observe_variant(&m, R2cConfig::full(7), MachineKind::EpycRome, 100_000_000).unwrap();
        // Corrupt one byte of the observed global: the diff must name it.
        obs.globals[0].1[8] ^= 0xff;
        let diffs = diff_against_reference(&m, &reference, &obs);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("counter"), "{diffs:?}");
        assert!(diffs[0].contains("byte 8"), "{diffs:?}");
    }

    #[test]
    fn output_mismatch_is_described() {
        let m = parse_module(SRC).unwrap();
        let reference = interpret(&m, "main", 1_000_000).unwrap();
        let mut obs =
            observe_variant(&m, R2cConfig::full(7), MachineKind::EpycRome, 100_000_000).unwrap();
        obs.output[0] += 1;
        let diffs = diff_against_reference(&m, &reference, &obs);
        assert!(diffs.iter().any(|d| d.contains("output[0]")), "{diffs:?}");
    }
}
