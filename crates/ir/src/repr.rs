//! IR data structures.

/// Index of a function within a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Index of a global within a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Index of a basic block within a [`Function`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// An IR value: the result of an instruction (or a parameter read).
/// Values are numbered densely per function.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct Val(pub u32);

/// Binary integer operations (all 64-bit, wrapping; division is signed
/// and traps on a zero divisor, like the machine instruction).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
}

impl BinOp {
    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Sar => "sar",
        }
    }
}

/// Integer comparisons producing 0 or 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

/// External (runtime-provided) functions callable from IR. The code
/// generator lowers these to VM native calls; they stand in for the
/// unprotected libc the paper links against (§6.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ExternFn {
    /// `ptr = malloc(size)`
    Malloc,
    /// `free(ptr)`
    Free,
    /// `ptr = memalign(align, size)`
    Memalign,
    /// `mprotect(ptr, len, perm_bits)`
    Mprotect,
    /// Emit an i64 to the program output.
    PrintI64,
    /// Emit a byte to the program output.
    PutChar,
    /// Stack-probe hook: the program "blocks" here (like a thread held
    /// by Malicious Thread Blocking) and an attacker may observe its
    /// stack. No semantic effect.
    Probe,
}

impl ExternFn {
    /// Textual name used by the printer/parser.
    pub fn name(self) -> &'static str {
        match self {
            ExternFn::Malloc => "malloc",
            ExternFn::Free => "free",
            ExternFn::Memalign => "memalign",
            ExternFn::Mprotect => "mprotect",
            ExternFn::PrintI64 => "print",
            ExternFn::PutChar => "putchar",
            ExternFn::Probe => "probe",
        }
    }

    /// Parses a textual name.
    pub fn from_name(s: &str) -> Option<ExternFn> {
        Some(match s {
            "malloc" => ExternFn::Malloc,
            "free" => ExternFn::Free,
            "memalign" => ExternFn::Memalign,
            "mprotect" => ExternFn::Mprotect,
            "print" => ExternFn::PrintI64,
            "putchar" => ExternFn::PutChar,
            "probe" => ExternFn::Probe,
            _ => return None,
        })
    }

    /// Number of arguments the extern expects.
    pub fn arity(self) -> usize {
        match self {
            ExternFn::Probe => 0,
            ExternFn::Malloc | ExternFn::Free | ExternFn::PrintI64 | ExternFn::PutChar => 1,
            ExternFn::Memalign => 2,
            ExternFn::Mprotect => 3,
        }
    }
}

/// One IR instruction. Instructions that produce a value are assigned
/// the next [`Val`] id by the builder.
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    /// 64-bit constant.
    Const(i64),
    /// Reads the `n`th incoming parameter (entry block only).
    Param(u32),
    /// Reserves `size` bytes of stack (entry block only); yields the
    /// slot address.
    Alloca {
        /// Size in bytes.
        size: u32,
        /// Alignment in bytes (power of two, ≥ 8).
        align: u32,
    },
    /// 64-bit load from `ptr + off`.
    Load {
        /// Address operand.
        ptr: Val,
        /// Constant byte offset.
        off: i32,
    },
    /// 64-bit store of `val` to `ptr + off`.
    Store {
        /// Address operand.
        ptr: Val,
        /// Constant byte offset.
        off: i32,
        /// Stored value.
        val: Val,
    },
    /// Binary operation.
    Bin {
        /// Operation.
        op: BinOp,
        /// Left operand.
        a: Val,
        /// Right operand.
        b: Val,
    },
    /// Comparison producing 0/1.
    Cmp {
        /// Comparison predicate.
        op: CmpOp,
        /// Left operand.
        a: Val,
        /// Right operand.
        b: Val,
    },
    /// Address of a global.
    GlobalAddr(GlobalId),
    /// Address of a function (a code pointer; these are what AOCR
    /// harvests).
    FuncAddr(FuncId),
    /// Pointer arithmetic: `base + idx * scale + disp`.
    PtrAdd {
        /// Base pointer.
        base: Val,
        /// Optional scaled index.
        idx: Option<Val>,
        /// Scale factor (1, 2, 4 or 8).
        scale: u8,
        /// Constant displacement.
        disp: i32,
    },
    /// Direct call.
    Call {
        /// Callee.
        callee: FuncId,
        /// Arguments (at most 6 in registers; the rest on the stack).
        args: Vec<Val>,
    },
    /// Indirect call through a function pointer.
    CallInd {
        /// Pointer operand.
        ptr: Val,
        /// Arguments.
        args: Vec<Val>,
    },
    /// Call of an external runtime function.
    CallExtern {
        /// Which extern.
        ext: ExternFn,
        /// Arguments.
        args: Vec<Val>,
    },
}

impl Inst {
    /// True if this instruction defines a result value.
    ///
    /// `Store` yields nothing; calls always yield a (possibly unused)
    /// result to keep numbering simple.
    pub fn has_result(&self) -> bool {
        !matches!(self, Inst::Store { .. })
    }
}

/// Block terminator.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way branch on `cond != 0`.
    CondBr {
        /// Condition value.
        cond: Val,
        /// Target when nonzero.
        then_bb: BlockId,
        /// Target when zero.
        else_bb: BlockId,
    },
    /// Return (optionally with a value).
    Ret(Option<Val>),
}

/// A basic block: instructions plus one terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Optional label (kept for printing; blocks are identified by id).
    pub name: String,
    /// Instructions, paired with their result value id (if any).
    pub insts: Vec<(Option<Val>, Inst)>,
    /// The terminator.
    pub term: Term,
}

/// A function.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name (unique within the module).
    pub name: String,
    /// Number of i64 parameters.
    pub params: u32,
    /// Basic blocks; `blocks[0]` is the entry.
    pub blocks: Vec<Block>,
    /// Total number of value ids used.
    pub num_vals: u32,
    /// If true, R²C instrumentation is skipped for this function
    /// (models the paper's per-function opt-out used for the three
    /// browser incompatibilities, §7.4.2).
    pub no_instrument: bool,
}

impl Function {
    /// Iterates over all instructions with their block ids.
    pub fn insts(&self) -> impl Iterator<Item = (BlockId, &(Option<Val>, Inst))> {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(b, blk)| blk.insts.iter().map(move |i| (BlockId(b as u32), i)))
    }

    /// Total static instruction count (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// Initializer of a global variable.
#[derive(Clone, Debug, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialized, `size` bytes.
    Zero(u32),
    /// A sequence of 64-bit words.
    Words(Vec<i64>),
    /// The address of a function (a code pointer in the data section —
    /// exactly the kind of default parameter AOCR corrupts).
    FuncPtr(FuncId),
}

impl GlobalInit {
    /// Size in bytes of this initializer.
    pub fn size(&self) -> u32 {
        match self {
            GlobalInit::Zero(n) => *n,
            GlobalInit::Words(w) => (w.len() * 8) as u32,
            GlobalInit::FuncPtr(_) => 8,
        }
    }
}

/// A global variable.
#[derive(Clone, Debug, PartialEq)]
pub struct Global {
    /// Name (unique within the module).
    pub name: String,
    /// Initializer (also determines size).
    pub init: GlobalInit,
    /// Alignment in bytes.
    pub align: u32,
}

/// A compilation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    /// Module name, used in diagnostics.
    pub name: String,
    /// Globals in declaration order (pre-diversification order — this
    /// is the predictable layout AOCR exploits).
    pub globals: Vec<Global>,
    /// Functions in declaration order.
    pub funcs: Vec<Function>,
}

impl Module {
    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// The function with the given id.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// The global with the given id.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extern_names_roundtrip() {
        for e in [
            ExternFn::Malloc,
            ExternFn::Free,
            ExternFn::Memalign,
            ExternFn::Mprotect,
            ExternFn::PrintI64,
            ExternFn::PutChar,
        ] {
            assert_eq!(ExternFn::from_name(e.name()), Some(e));
        }
        assert_eq!(ExternFn::from_name("bogus"), None);
    }

    #[test]
    fn store_has_no_result() {
        assert!(!Inst::Store {
            ptr: Val(0),
            off: 0,
            val: Val(1)
        }
        .has_result());
        assert!(Inst::Const(1).has_result());
    }

    #[test]
    fn global_init_sizes() {
        assert_eq!(GlobalInit::Zero(100).size(), 100);
        assert_eq!(GlobalInit::Words(vec![1, 2, 3]).size(), 24);
        assert_eq!(GlobalInit::FuncPtr(FuncId(0)).size(), 8);
    }
}
