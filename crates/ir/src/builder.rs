//! Fluent construction of IR modules and functions.
//!
//! ```
//! use r2c_ir::{ModuleBuilder, BinOp, ExternFn};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let mut f = mb.function("main", 0);
//! let a = f.iconst(40);
//! let b = f.iconst(2);
//! let s = f.bin(BinOp::Add, a, b);
//! f.call_extern(ExternFn::PrintI64, &[s]);
//! f.ret(Some(s));
//! f.finish();
//! let module = mb.finish();
//! assert!(r2c_ir::verify_module(&module).is_ok());
//! ```

use crate::repr::{
    BinOp, Block, BlockId, CmpOp, ExternFn, FuncId, Function, Global, GlobalId, GlobalInit, Inst,
    Module, Term, Val,
};

/// Builds a [`Module`] incrementally.
pub struct ModuleBuilder {
    module: Module,
    /// Names pre-declared via [`declare_function`], so that mutually
    /// recursive functions can reference each other before definition.
    ///
    /// [`declare_function`]: ModuleBuilder::declare_function
    declared: Vec<(String, u32)>,
}

impl ModuleBuilder {
    /// Creates an empty module.
    pub fn new(name: &str) -> ModuleBuilder {
        ModuleBuilder {
            module: Module {
                name: name.to_string(),
                ..Module::default()
            },
            declared: Vec::new(),
        }
    }

    /// Wraps an existing module so that more globals and functions can
    /// be appended (used by the R²C front end to inject its runtime).
    pub fn from_module(module: Module) -> ModuleBuilder {
        ModuleBuilder {
            module,
            declared: Vec::new(),
        }
    }

    /// Adds a global variable; returns its id.
    pub fn global(&mut self, name: &str, init: GlobalInit, align: u32) -> GlobalId {
        debug_assert!(align.is_power_of_two());
        let id = GlobalId(self.module.globals.len() as u32);
        self.module.globals.push(Global {
            name: name.to_string(),
            init,
            align,
        });
        id
    }

    /// Pre-declares a function signature so it can be called before its
    /// body is defined. The body must later be supplied via
    /// [`function`] with the same name.
    ///
    /// [`function`]: ModuleBuilder::function
    pub fn declare_function(&mut self, name: &str, params: u32) -> FuncId {
        if let Some(id) = self.lookup(name) {
            return id;
        }
        let id = FuncId(self.module.funcs.len() as u32);
        self.module.funcs.push(Function {
            name: name.to_string(),
            params,
            blocks: Vec::new(),
            num_vals: 0,
            no_instrument: false,
        });
        self.declared.push((name.to_string(), params));
        id
    }

    fn lookup(&self, name: &str) -> Option<FuncId> {
        self.module.func_by_name(name)
    }

    /// Starts building a function body. If the name was pre-declared the
    /// existing id is reused.
    pub fn function(&mut self, name: &str, params: u32) -> FunctionBuilder<'_> {
        let id = self.declare_function(name, params);
        FunctionBuilder::new(self, id)
    }

    /// Finalizes and returns the module.
    ///
    /// # Panics
    ///
    /// Panics if a declared function was never given a body.
    pub fn finish(self) -> Module {
        for f in &self.module.funcs {
            assert!(
                !f.blocks.is_empty(),
                "function {:?} declared but never defined",
                f.name
            );
        }
        self.module
    }

    /// Access to the module built so far (for tests).
    pub fn module(&self) -> &Module {
        &self.module
    }
}

/// Builds one function's body.
///
/// Blocks are created with [`new_block`] and selected with
/// [`switch_to`]; instructions append to the current block. Every block
/// must be sealed with exactly one terminator ([`ret`], [`br`],
/// [`cond_br`]).
///
/// [`new_block`]: FunctionBuilder::new_block
/// [`switch_to`]: FunctionBuilder::switch_to
/// [`ret`]: FunctionBuilder::ret
/// [`br`]: FunctionBuilder::br
/// [`cond_br`]: FunctionBuilder::cond_br
pub struct FunctionBuilder<'m> {
    mb: &'m mut ModuleBuilder,
    id: FuncId,
    blocks: Vec<Block>,
    current: usize,
    next_val: u32,
    terminated: Vec<bool>,
}

impl<'m> FunctionBuilder<'m> {
    fn new(mb: &'m mut ModuleBuilder, id: FuncId) -> FunctionBuilder<'m> {
        FunctionBuilder {
            mb,
            id,
            blocks: vec![Block {
                name: "entry".into(),
                insts: Vec::new(),
                term: Term::Ret(None),
            }],
            current: 0,
            next_val: 0,
            terminated: vec![false],
        }
    }

    /// The id of the function being built.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// Creates a new (empty, unterminated) block.
    pub fn new_block(&mut self, name: &str) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            name: name.to_string(),
            insts: Vec::new(),
            term: Term::Ret(None),
        });
        self.terminated.push(false);
        id
    }

    /// Makes `bb` the block new instructions append to.
    pub fn switch_to(&mut self, bb: BlockId) {
        assert!((bb.0 as usize) < self.blocks.len());
        self.current = bb.0 as usize;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        BlockId(self.current as u32)
    }

    fn push(&mut self, inst: Inst) -> Val {
        assert!(
            !self.terminated[self.current],
            "appending to a terminated block"
        );
        let val = if inst.has_result() {
            let v = Val(self.next_val);
            self.next_val += 1;
            Some(v)
        } else {
            None
        };
        self.blocks[self.current].insts.push((val, inst));
        val.unwrap_or(Val(u32::MAX))
    }

    /// Emits a constant.
    pub fn iconst(&mut self, v: i64) -> Val {
        self.push(Inst::Const(v))
    }

    /// Reads parameter `n`.
    pub fn param(&mut self, n: u32) -> Val {
        self.push(Inst::Param(n))
    }

    /// Reserves a stack slot.
    pub fn alloca(&mut self, size: u32, align: u32) -> Val {
        self.push(Inst::Alloca { size, align })
    }

    /// 64-bit load from `ptr + off`.
    pub fn load(&mut self, ptr: Val, off: i32) -> Val {
        self.push(Inst::Load { ptr, off })
    }

    /// 64-bit store to `ptr + off`.
    pub fn store(&mut self, ptr: Val, off: i32, val: Val) {
        self.push(Inst::Store { ptr, off, val });
    }

    /// Binary operation.
    pub fn bin(&mut self, op: BinOp, a: Val, b: Val) -> Val {
        self.push(Inst::Bin { op, a, b })
    }

    /// Comparison (0/1 result).
    pub fn cmp(&mut self, op: CmpOp, a: Val, b: Val) -> Val {
        self.push(Inst::Cmp { op, a, b })
    }

    /// Address of a global.
    pub fn global_addr(&mut self, g: GlobalId) -> Val {
        self.push(Inst::GlobalAddr(g))
    }

    /// Address of a function.
    pub fn func_addr(&mut self, f: FuncId) -> Val {
        self.push(Inst::FuncAddr(f))
    }

    /// Pointer arithmetic.
    pub fn ptr_add(&mut self, base: Val, idx: Option<Val>, scale: u8, disp: i32) -> Val {
        self.push(Inst::PtrAdd {
            base,
            idx,
            scale,
            disp,
        })
    }

    /// Direct call.
    pub fn call(&mut self, callee: FuncId, args: &[Val]) -> Val {
        self.push(Inst::Call {
            callee,
            args: args.to_vec(),
        })
    }

    /// Indirect call.
    pub fn call_ind(&mut self, ptr: Val, args: &[Val]) -> Val {
        self.push(Inst::CallInd {
            ptr,
            args: args.to_vec(),
        })
    }

    /// Extern (runtime) call.
    pub fn call_extern(&mut self, ext: ExternFn, args: &[Val]) -> Val {
        assert_eq!(args.len(), ext.arity(), "wrong arity for {}", ext.name());
        self.push(Inst::CallExtern {
            ext,
            args: args.to_vec(),
        })
    }

    fn terminate(&mut self, term: Term) {
        assert!(!self.terminated[self.current], "block already terminated");
        self.blocks[self.current].term = term;
        self.terminated[self.current] = true;
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, val: Option<Val>) {
        self.terminate(Term::Ret(val));
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, bb: BlockId) {
        self.terminate(Term::Br(bb));
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: Val, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Term::CondBr {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Marks this function as exempt from R²C instrumentation.
    pub fn no_instrument(&mut self) {
        self.mb.module.funcs[self.id.0 as usize].no_instrument = true;
    }

    /// Installs the built body into the module.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator.
    pub fn finish(self) {
        for (i, t) in self.terminated.iter().enumerate() {
            assert!(
                *t,
                "block {} ({:?}) lacks a terminator",
                i, self.blocks[i].name
            );
        }
        let f = &mut self.mb.module.funcs[self.id.0 as usize];
        f.blocks = self.blocks;
        f.num_vals = self.next_val;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_module;

    #[test]
    fn straight_line_function() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let a = f.iconst(1);
        let b = f.iconst(2);
        let c = f.bin(BinOp::Add, a, b);
        f.ret(Some(c));
        f.finish();
        let m = mb.finish();
        assert!(verify_module(&m).is_ok());
        assert_eq!(m.funcs[0].num_vals, 3);
    }

    #[test]
    fn loops_and_blocks() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let slot = f.alloca(8, 8);
        let zero = f.iconst(0);
        f.store(slot, 0, zero);
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        f.br(body);
        f.switch_to(body);
        let cur = f.load(slot, 0);
        let one = f.iconst(1);
        let next = f.bin(BinOp::Add, cur, one);
        f.store(slot, 0, next);
        let lim = f.iconst(10);
        let done = f.cmp(CmpOp::Ge, next, lim);
        f.cond_br(done, exit, body);
        f.switch_to(exit);
        let fin = f.load(slot, 0);
        f.ret(Some(fin));
        f.finish();
        assert!(verify_module(&mb.finish()).is_ok());
    }

    #[test]
    fn mutual_recursion_via_declare() {
        let mut mb = ModuleBuilder::new("t");
        let g_id = mb.declare_function("g", 1);
        let mut f = mb.function("f", 1);
        let p = f.param(0);
        let r = f.call(g_id, &[p]);
        f.ret(Some(r));
        f.finish();
        let mut g = mb.function("g", 1);
        let p = g.param(0);
        g.ret(Some(p));
        g.finish();
        let m = mb.finish();
        assert!(verify_module(&m).is_ok());
        assert_eq!(m.funcs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn missing_terminator_panics() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let b = f.new_block("dangling");
        f.ret(None);
        let _ = b;
        f.finish();
    }

    #[test]
    #[should_panic(expected = "declared but never defined")]
    fn undefined_declaration_panics() {
        let mut mb = ModuleBuilder::new("t");
        mb.declare_function("ghost", 0);
        mb.finish();
    }
}
