//! Reference interpreter for IR modules.
//!
//! The interpreter executes a module directly, with its own simple
//! memory model (globals, a stack for allocas, a bump-allocated heap).
//! Pointer *values* differ from the compiled program's, but arithmetic
//! and control flow are identical, so a program that prints only
//! integers (never raw pointers) must produce exactly the same output
//! interpreted and compiled. This differential check is how the
//! reproduction establishes that R²C's diversifications are
//! semantics-preserving — the analogue of the paper running browser
//! test suites on R²C-compiled WebKit (§6.3).

use std::collections::HashMap;

use crate::repr::{BinOp, CmpOp, ExternFn, FuncId, Inst, Module, Term};

/// Interpreter errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// Division or remainder by zero.
    DivideByZero,
    /// Memory access outside any live region.
    BadAccess(u64),
    /// Call through a pointer that is not a function address.
    BadCallTarget(u64),
    /// Execution exceeded the fuel budget.
    OutOfFuel,
    /// Call depth exceeded the recursion limit.
    StackOverflow,
    /// Heap exhausted.
    OutOfMemory,
    /// The named function does not exist.
    NoSuchFunction(String),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::DivideByZero => f.write_str("division by zero"),
            InterpError::BadAccess(a) => write!(f, "bad memory access at {a:#x}"),
            InterpError::BadCallTarget(a) => write!(f, "bad call target {a:#x}"),
            InterpError::OutOfFuel => f.write_str("out of fuel"),
            InterpError::StackOverflow => f.write_str("interpreter stack overflow"),
            InterpError::OutOfMemory => f.write_str("interpreter heap exhausted"),
            InterpError::NoSuchFunction(n) => write!(f, "no such function {n:?}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Result of interpreting a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterpResult {
    /// Value returned by the entry function.
    pub ret: i64,
    /// Values printed via the `print`/`putchar` externs.
    pub output: Vec<i64>,
    /// Dynamically executed IR instructions.
    pub executed: u64,
    /// Number of direct/indirect calls executed.
    pub calls: u64,
    /// Final contents of every global, in declaration order (one byte
    /// vector per global, of its initializer size). Globals are the
    /// only memory whose layout both execution worlds agree on, which
    /// makes these bytes the "observable memory" the differential fuzz
    /// oracle compares against compiled execution — provided the
    /// program never stores pointer-valued data into a global (pointer
    /// *values* legitimately differ between the two worlds).
    pub globals: Vec<Vec<u8>>,
}

const GLOBAL_BASE: u64 = 0x10_0000;
const STACK_BASE: u64 = 0x20_0000_0000;
const STACK_SIZE: u64 = 16 * 1024 * 1024;
const HEAP_BASE: u64 = 0x40_0000_0000;
const HEAP_SIZE: u64 = 256 * 1024 * 1024;
/// Function ids are encoded as fake code addresses in this range so that
/// `funcref` + `callind` work in the interpreter.
const CODE_BASE: u64 = 0x80_0000_0000;

struct Interp<'m> {
    m: &'m Module,
    globals: Vec<u8>,
    global_off: HashMap<u32, u64>,
    stack: Vec<u8>,
    sp: u64, // offset into `stack`
    heap: Vec<u8>,
    hp: u64, // bump pointer offset
    output: Vec<i64>,
    executed: u64,
    calls: u64,
    fuel: u64,
    depth: u32,
}

impl<'m> Interp<'m> {
    fn new(m: &'m Module, fuel: u64) -> Interp<'m> {
        let mut globals = Vec::new();
        let mut global_off = HashMap::new();
        for (i, g) in m.globals.iter().enumerate() {
            let align = g.align.max(8) as u64;
            let off = (globals.len() as u64).next_multiple_of(align);
            globals.resize(off as usize, 0);
            global_off.insert(i as u32, off);
            match &g.init {
                crate::repr::GlobalInit::Zero(n) => globals.resize(globals.len() + *n as usize, 0),
                crate::repr::GlobalInit::Words(w) => {
                    for x in w {
                        globals.extend_from_slice(&x.to_le_bytes());
                    }
                }
                crate::repr::GlobalInit::FuncPtr(f) => {
                    globals.extend_from_slice(&(CODE_BASE + f.0 as u64).to_le_bytes());
                }
            }
        }
        Interp {
            m,
            globals,
            global_off,
            stack: vec![0; STACK_SIZE as usize],
            sp: 0,
            heap: Vec::new(),
            hp: 0,
            output: Vec::new(),
            executed: 0,
            calls: 0,
            fuel,
            depth: 0,
        }
    }

    fn load(&self, addr: u64) -> Result<u64, InterpError> {
        let bytes = self.mem_slice(addr)?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn mem_slice(&self, addr: u64) -> Result<[u8; 8], InterpError> {
        let (buf, off) = self.route(addr)?;
        let off = off as usize;
        if off + 8 > buf.len() {
            return Err(InterpError::BadAccess(addr));
        }
        Ok(buf[off..off + 8].try_into().unwrap())
    }

    fn route(&self, addr: u64) -> Result<(&[u8], u64), InterpError> {
        if (HEAP_BASE..HEAP_BASE + HEAP_SIZE).contains(&addr) {
            Ok((&self.heap, addr - HEAP_BASE))
        } else if (STACK_BASE..STACK_BASE + STACK_SIZE).contains(&addr) {
            Ok((&self.stack, addr - STACK_BASE))
        } else if addr >= GLOBAL_BASE && addr < GLOBAL_BASE + self.globals.len() as u64 {
            Ok((&self.globals, addr - GLOBAL_BASE))
        } else {
            Err(InterpError::BadAccess(addr))
        }
    }

    fn store(&mut self, addr: u64, val: u64) -> Result<(), InterpError> {
        let (buf, off) = if (HEAP_BASE..HEAP_BASE + HEAP_SIZE).contains(&addr) {
            (&mut self.heap, addr - HEAP_BASE)
        } else if (STACK_BASE..STACK_BASE + STACK_SIZE).contains(&addr) {
            (&mut self.stack, addr - STACK_BASE)
        } else if addr >= GLOBAL_BASE && addr < GLOBAL_BASE + self.globals.len() as u64 {
            (&mut self.globals, addr - GLOBAL_BASE)
        } else {
            return Err(InterpError::BadAccess(addr));
        };
        let off = off as usize;
        if off + 8 > buf.len() {
            return Err(InterpError::BadAccess(addr));
        }
        buf[off..off + 8].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    fn call(&mut self, f: FuncId, args: &[u64]) -> Result<u64, InterpError> {
        if self.depth >= 4000 {
            return Err(InterpError::StackOverflow);
        }
        self.depth += 1;
        let func = &self.m.funcs[f.0 as usize];
        let frame_base = self.sp;
        let mut vals: Vec<u64> = vec![0; func.num_vals as usize];
        let mut bb = 0usize;
        let ret = 'outer: loop {
            let block = &func.blocks[bb];
            for (res, inst) in &block.insts {
                if self.executed >= self.fuel {
                    self.depth -= 1;
                    return Err(InterpError::OutOfFuel);
                }
                self.executed += 1;
                let out: u64 = match inst {
                    Inst::Const(c) => *c as u64,
                    Inst::Param(n) => args.get(*n as usize).copied().unwrap_or(0),
                    Inst::Alloca { size, align } => {
                        let align = (*align).max(8) as u64;
                        let off = self.sp.next_multiple_of(align);
                        let new_sp = off + *size as u64;
                        if new_sp > STACK_SIZE {
                            self.depth -= 1;
                            return Err(InterpError::StackOverflow);
                        }
                        // Zero the slot (fresh stack memory in the VM is
                        // also zero).
                        self.stack[off as usize..new_sp as usize].fill(0);
                        self.sp = new_sp;
                        STACK_BASE + off
                    }
                    Inst::Load { ptr, off } => {
                        let a = vals[ptr.0 as usize].wrapping_add_signed(*off as i64);
                        match self.load(a) {
                            Ok(v) => v,
                            Err(e) => {
                                self.depth -= 1;
                                return Err(e);
                            }
                        }
                    }
                    Inst::Store { ptr, off, val } => {
                        let a = vals[ptr.0 as usize].wrapping_add_signed(*off as i64);
                        let v = vals[val.0 as usize];
                        if let Err(e) = self.store(a, v) {
                            self.depth -= 1;
                            return Err(e);
                        }
                        continue;
                    }
                    Inst::Bin { op, a, b } => {
                        let (x, y) = (vals[a.0 as usize], vals[b.0 as usize]);
                        match bin(*op, x, y) {
                            Ok(v) => v,
                            Err(e) => {
                                self.depth -= 1;
                                return Err(e);
                            }
                        }
                    }
                    Inst::Cmp { op, a, b } => {
                        let (x, y) = (vals[a.0 as usize] as i64, vals[b.0 as usize] as i64);
                        let r = match op {
                            CmpOp::Eq => x == y,
                            CmpOp::Ne => x != y,
                            CmpOp::Lt => x < y,
                            CmpOp::Le => x <= y,
                            CmpOp::Gt => x > y,
                            CmpOp::Ge => x >= y,
                        };
                        r as u64
                    }
                    Inst::GlobalAddr(g) => GLOBAL_BASE + self.global_off[&g.0],
                    Inst::FuncAddr(f) => CODE_BASE + f.0 as u64,
                    Inst::PtrAdd {
                        base,
                        idx,
                        scale,
                        disp,
                    } => {
                        let mut a = vals[base.0 as usize];
                        if let Some(i) = idx {
                            a = a.wrapping_add(vals[i.0 as usize].wrapping_mul(*scale as u64));
                        }
                        a.wrapping_add_signed(*disp as i64)
                    }
                    Inst::Call {
                        callee,
                        args: call_args,
                    } => {
                        self.calls += 1;
                        let argv: Vec<u64> = call_args.iter().map(|a| vals[a.0 as usize]).collect();
                        match self.call(*callee, &argv) {
                            Ok(v) => v,
                            Err(e) => {
                                self.depth -= 1;
                                return Err(e);
                            }
                        }
                    }
                    Inst::CallInd {
                        ptr,
                        args: call_args,
                    } => {
                        self.calls += 1;
                        let target = vals[ptr.0 as usize];
                        if target < CODE_BASE || target >= CODE_BASE + self.m.funcs.len() as u64 {
                            self.depth -= 1;
                            return Err(InterpError::BadCallTarget(target));
                        }
                        let fid = FuncId((target - CODE_BASE) as u32);
                        let argv: Vec<u64> = call_args.iter().map(|a| vals[a.0 as usize]).collect();
                        match self.call(fid, &argv) {
                            Ok(v) => v,
                            Err(e) => {
                                self.depth -= 1;
                                return Err(e);
                            }
                        }
                    }
                    Inst::CallExtern {
                        ext,
                        args: call_args,
                    } => {
                        let argv: Vec<u64> = call_args.iter().map(|a| vals[a.0 as usize]).collect();
                        match self.call_extern(*ext, &argv) {
                            Ok(v) => v,
                            Err(e) => {
                                self.depth -= 1;
                                return Err(e);
                            }
                        }
                    }
                };
                if let Some(r) = res {
                    vals[r.0 as usize] = out;
                }
            }
            // Terminators consume fuel too: a block with no body that
            // branches to itself must still hit the budget.
            if self.executed >= self.fuel {
                self.depth -= 1;
                return Err(InterpError::OutOfFuel);
            }
            self.executed += 1;
            match &block.term {
                Term::Br(b) => bb = b.0 as usize,
                Term::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    bb = if vals[cond.0 as usize] != 0 {
                        then_bb.0
                    } else {
                        else_bb.0
                    } as usize;
                }
                Term::Ret(v) => {
                    break 'outer v.map(|v| vals[v.0 as usize]).unwrap_or(0);
                }
            }
        };
        self.sp = frame_base;
        self.depth -= 1;
        Ok(ret)
    }

    fn call_extern(&mut self, ext: ExternFn, args: &[u64]) -> Result<u64, InterpError> {
        Ok(match ext {
            ExternFn::Malloc => self.bump_alloc(args[0], 16)?,
            ExternFn::Free => 0,
            ExternFn::Memalign => self.bump_alloc(args[1], args[0].max(16))?,
            ExternFn::Mprotect => 0,
            ExternFn::PrintI64 => {
                self.output.push(args[0] as i64);
                0
            }
            ExternFn::PutChar => {
                self.output.push((args[0] & 0xff) as i64);
                0
            }
            ExternFn::Probe => 0,
        })
    }

    fn bump_alloc(&mut self, size: u64, align: u64) -> Result<u64, InterpError> {
        // Sizes and alignments are guest-controlled (fuzz mutants
        // request absurd ones); checked arithmetic keeps that an
        // OutOfMemory error instead of a debug-build overflow panic.
        let off = self
            .hp
            .checked_next_multiple_of(align.max(16))
            .ok_or(InterpError::OutOfMemory)?;
        let new_hp = off
            .checked_add(size.max(1))
            .ok_or(InterpError::OutOfMemory)?;
        if new_hp > HEAP_SIZE {
            return Err(InterpError::OutOfMemory);
        }
        if new_hp as usize > self.heap.len() {
            self.heap.resize(new_hp as usize, 0);
        }
        self.hp = new_hp;
        Ok(HEAP_BASE + off)
    }
}

fn bin(op: BinOp, x: u64, y: u64) -> Result<u64, InterpError> {
    Ok(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err(InterpError::DivideByZero);
            }
            (x as i64).wrapping_div(y as i64) as u64
        }
        BinOp::Rem => {
            if y == 0 {
                return Err(InterpError::DivideByZero);
            }
            (x as i64).wrapping_rem(y as i64) as u64
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32 & 63),
        BinOp::Shr => x.wrapping_shr(y as u32 & 63),
        BinOp::Sar => ((x as i64).wrapping_shr(y as u32 & 63)) as u64,
    })
}

/// Stack size for the dedicated interpreter thread. The interpreter
/// recurses one native frame per guest call up to its 4000-frame
/// recursion limit; debug-build frames are large enough that the
/// default 2 MiB test-thread stack overflows before the limit trips.
/// Running on a dedicated thread makes `InterpError::RecursionLimit`
/// the outcome regardless of the caller's stack.
const INTERP_STACK_BYTES: usize = 64 << 20;

/// Interprets `entry` (by name) with no arguments.
///
/// `fuel` bounds the number of executed IR instructions.
pub fn interpret(m: &Module, entry: &str, fuel: u64) -> Result<InterpResult, InterpError> {
    std::thread::scope(|s| {
        std::thread::Builder::new()
            .name("r2c-interp".into())
            .stack_size(INTERP_STACK_BYTES)
            .spawn_scoped(s, || interpret_on_this_stack(m, entry, fuel))
            .expect("spawn interpreter thread")
            .join()
            .expect("interpreter thread panicked")
    })
}

fn interpret_on_this_stack(
    m: &Module,
    entry: &str,
    fuel: u64,
) -> Result<InterpResult, InterpError> {
    let id = m
        .func_by_name(entry)
        .ok_or_else(|| InterpError::NoSuchFunction(entry.to_string()))?;
    let mut interp = Interp::new(m, fuel);
    let ret = interp.call(id, &[])?;
    let globals = m
        .globals
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let off = interp.global_off[&(i as u32)] as usize;
            interp.globals[off..off + g.init.size() as usize].to_vec()
        })
        .collect();
    Ok(InterpResult {
        ret: ret as i64,
        output: interp.output,
        executed: interp.executed,
        calls: interp.calls,
        globals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn run(src: &str) -> InterpResult {
        let m = parse_module(src).unwrap();
        crate::verify::verify_module(&m).unwrap();
        interpret(&m, "main", 10_000_000).unwrap()
    }

    #[test]
    fn arithmetic() {
        let r = run("func @main(0) {\nentry:\n  %0 = const 6\n  %1 = const 7\n  %2 = mul %0, %1\n  ret %2\n}\n");
        assert_eq!(r.ret, 42);
    }

    #[test]
    fn loop_sum() {
        let src = r#"
func @main(0) {
entry:
  %0 = alloca 16 align 8
  %1 = const 0
  store %0 + 0, %1
  store %0 + 8, %1
  br loop
loop:
  %2 = load %0 + 0
  %3 = const 1
  %4 = add %2, %3
  store %0 + 0, %4
  %5 = load %0 + 8
  %6 = add %5, %4
  store %0 + 8, %6
  %7 = const 100
  %8 = cmp lt %4, %7
  condbr %8, loop, exit
exit:
  %9 = load %0 + 8
  ret %9
}
"#;
        assert_eq!(run(src).ret, 5050);
    }

    #[test]
    fn call_and_output() {
        let src = r#"
func @double(1) {
entry:
  %0 = param 0
  %1 = add %0, %0
  ret %1
}
func @main(0) {
entry:
  %0 = const 21
  %1 = call @double(%0)
  %2 = extern print(%1)
  ret %1
}
"#;
        let r = run(src);
        assert_eq!(r.ret, 42);
        assert_eq!(r.output, vec![42]);
        assert_eq!(r.calls, 1);
    }

    #[test]
    fn indirect_call_through_global() {
        let src = r#"
global @fp funcptr @target align 8
func @target(1) {
entry:
  %0 = param 0
  %1 = const 1
  %2 = add %0, %1
  ret %2
}
func @main(0) {
entry:
  %0 = addrof @fp
  %1 = load %0 + 0
  %2 = const 9
  %3 = callind %1(%2)
  ret %3
}
"#;
        assert_eq!(run(src).ret, 10);
    }

    #[test]
    fn heap_roundtrip() {
        let src = r#"
func @main(0) {
entry:
  %0 = const 64
  %1 = extern malloc(%0)
  %2 = const 1234
  store %1 + 16, %2
  %3 = load %1 + 16
  ret %3
}
"#;
        assert_eq!(run(src).ret, 1234);
    }

    #[test]
    fn divide_by_zero_reported() {
        let src = "func @main(0) {\nentry:\n  %0 = const 1\n  %1 = const 0\n  %2 = div %0, %1\n  ret %2\n}\n";
        let m = parse_module(src).unwrap();
        assert_eq!(interpret(&m, "main", 1000), Err(InterpError::DivideByZero));
    }

    #[test]
    fn fuel_exhaustion() {
        let src = "func @main(0) {\nentry:\n  br entry\n}\n";
        let m = parse_module(src).unwrap();
        assert_eq!(interpret(&m, "main", 100), Err(InterpError::OutOfFuel));
    }

    #[test]
    fn recursion_and_stack_reuse() {
        let src = r#"
func @fib(1) {
entry:
  %0 = param 0
  %1 = const 2
  %2 = cmp lt %0, %1
  condbr %2, base, rec
base:
  ret %0
rec:
  %3 = const 1
  %4 = sub %0, %3
  %5 = call @fib(%4)
  %6 = const 2
  %7 = sub %0, %6
  %8 = call @fib(%7)
  %9 = add %5, %8
  ret %9
}
func @main(0) {
entry:
  %0 = const 15
  %1 = call @fib(%0)
  ret %1
}
"#;
        assert_eq!(run(src).ret, 610);
    }

    #[test]
    fn wild_access_reported() {
        let src = "func @main(0) {\nentry:\n  %0 = const 4096\n  %1 = load %0 + 0\n  ret %1\n}\n";
        let m = parse_module(src).unwrap();
        assert!(matches!(
            interpret(&m, "main", 1000),
            Err(InterpError::BadAccess(_))
        ));
    }
}
