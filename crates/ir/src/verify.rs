//! Structural verification of IR modules.

use std::collections::HashSet;

use crate::repr::{BlockId, Inst, Module, Term, Val};

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the error occurred (if any).
    pub func: Option<String>,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.func {
            Some(name) => write!(f, "in function {name:?}: {}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies module-wide invariants:
///
/// * unique function and global names,
/// * every referenced function/global/block id in range,
/// * values defined exactly once and before use (in block order — our
///   builder emits structured control flow, so dominance is
///   approximated by definition order, which is sound for the code the
///   builders and parser produce and is what the code generator
///   assumes),
/// * `Alloca`/`Param` only in the entry block,
/// * call arity matches the callee signature.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let mut names = HashSet::new();
    for f in &m.funcs {
        if !names.insert(&f.name) {
            return Err(VerifyError {
                func: None,
                msg: format!("duplicate function name {:?}", f.name),
            });
        }
    }
    let mut gnames = HashSet::new();
    for g in &m.globals {
        if !gnames.insert(&g.name) {
            return Err(VerifyError {
                func: None,
                msg: format!("duplicate global name {:?}", g.name),
            });
        }
        if !g.align.is_power_of_two() {
            return Err(VerifyError {
                func: None,
                msg: format!(
                    "global {:?} alignment {} not a power of two",
                    g.name, g.align
                ),
            });
        }
    }
    for f in &m.funcs {
        verify_function(m, f).map_err(|msg| VerifyError {
            func: Some(f.name.clone()),
            msg,
        })?;
    }
    Ok(())
}

fn verify_function(m: &Module, f: &crate::repr::Function) -> Result<(), String> {
    if f.blocks.is_empty() {
        return Err("no blocks".into());
    }
    let nblocks = f.blocks.len() as u32;
    let mut defined: Vec<bool> = vec![false; f.num_vals as usize];

    let check_val = |v: Val, defined: &[bool]| -> Result<(), String> {
        if v.0 as usize >= defined.len() {
            return Err(format!("value %{} out of range", v.0));
        }
        if !defined[v.0 as usize] {
            return Err(format!("value %{} used before definition", v.0));
        }
        Ok(())
    };
    let check_bb = |b: BlockId| -> Result<(), String> {
        if b.0 >= nblocks {
            return Err(format!("branch to nonexistent block {}", b.0));
        }
        Ok(())
    };

    for (bi, block) in f.blocks.iter().enumerate() {
        for (res, inst) in &block.insts {
            // Operand checks.
            match inst {
                Inst::Const(_) | Inst::GlobalAddr(_) | Inst::FuncAddr(_) => {}
                Inst::Param(n) => {
                    if *n >= f.params {
                        return Err(format!("param {n} out of range (have {})", f.params));
                    }
                    if bi != 0 {
                        return Err("param outside entry block".into());
                    }
                }
                Inst::Alloca { align, .. } => {
                    if bi != 0 {
                        return Err("alloca outside entry block".into());
                    }
                    if !align.is_power_of_two() {
                        return Err(format!("alloca alignment {align} not a power of two"));
                    }
                }
                Inst::Load { ptr, .. } => check_val(*ptr, &defined)?,
                Inst::Store { ptr, val, .. } => {
                    check_val(*ptr, &defined)?;
                    check_val(*val, &defined)?;
                }
                Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                    check_val(*a, &defined)?;
                    check_val(*b, &defined)?;
                }
                Inst::PtrAdd {
                    base, idx, scale, ..
                } => {
                    check_val(*base, &defined)?;
                    if let Some(i) = idx {
                        check_val(*i, &defined)?;
                    }
                    if !matches!(scale, 1 | 2 | 4 | 8) {
                        return Err(format!("invalid ptradd scale {scale}"));
                    }
                }
                Inst::Call { callee, args } => {
                    let cf = m
                        .funcs
                        .get(callee.0 as usize)
                        .ok_or_else(|| format!("call to nonexistent function {}", callee.0))?;
                    if args.len() != cf.params as usize {
                        return Err(format!(
                            "call to {:?} with {} args (expects {})",
                            cf.name,
                            args.len(),
                            cf.params
                        ));
                    }
                    for a in args {
                        check_val(*a, &defined)?;
                    }
                }
                Inst::CallInd { ptr, args } => {
                    check_val(*ptr, &defined)?;
                    for a in args {
                        check_val(*a, &defined)?;
                    }
                }
                Inst::CallExtern { ext, args } => {
                    if args.len() != ext.arity() {
                        return Err(format!(
                            "extern {} called with {} args (expects {})",
                            ext.name(),
                            args.len(),
                            ext.arity()
                        ));
                    }
                    for a in args {
                        check_val(*a, &defined)?;
                    }
                }
            }
            match inst {
                Inst::GlobalAddr(g) if g.0 as usize >= m.globals.len() => {
                    return Err(format!("reference to nonexistent global {}", g.0));
                }
                Inst::FuncAddr(fi) if fi.0 as usize >= m.funcs.len() => {
                    return Err(format!("reference to nonexistent function {}", fi.0));
                }
                _ => {}
            }
            // Definition checks.
            match (res, inst.has_result()) {
                (Some(v), true) => {
                    if v.0 >= f.num_vals {
                        return Err(format!("result %{} exceeds num_vals {}", v.0, f.num_vals));
                    }
                    if defined[v.0 as usize] {
                        return Err(format!("value %{} defined twice", v.0));
                    }
                    defined[v.0 as usize] = true;
                }
                (None, false) => {}
                (Some(v), false) => return Err(format!("store assigned result %{}", v.0)),
                (None, true) => return Err("result-producing instruction without id".into()),
            }
        }
        match &block.term {
            Term::Br(b) => check_bb(*b)?,
            Term::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                check_val(*cond, &defined)?;
                check_bb(*then_bb)?;
                check_bb(*else_bb)?;
            }
            Term::Ret(Some(v)) => check_val(*v, &defined)?,
            Term::Ret(None) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::repr::{BinOp, Block, Function, Term};

    #[test]
    fn rejects_duplicate_function_names() {
        let mut m = Module::default();
        let f = Function {
            name: "f".into(),
            params: 0,
            blocks: vec![Block {
                name: "e".into(),
                insts: vec![],
                term: Term::Ret(None),
            }],
            num_vals: 0,
            no_instrument: false,
        };
        m.funcs.push(f.clone());
        m.funcs.push(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_use_before_def() {
        let mut m = Module::default();
        m.funcs.push(Function {
            name: "f".into(),
            params: 0,
            blocks: vec![Block {
                name: "e".into(),
                insts: vec![(
                    Some(Val(0)),
                    Inst::Bin {
                        op: BinOp::Add,
                        a: Val(1),
                        b: Val(1),
                    },
                )],
                term: Term::Ret(None),
            }],
            num_vals: 2,
            no_instrument: false,
        });
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("before definition"), "{err}");
    }

    #[test]
    fn rejects_bad_branch_target() {
        let mut m = Module::default();
        m.funcs.push(Function {
            name: "f".into(),
            params: 0,
            blocks: vec![Block {
                name: "e".into(),
                insts: vec![],
                term: Term::Br(BlockId(7)),
            }],
            num_vals: 0,
            no_instrument: false,
        });
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut mb = ModuleBuilder::new("t");
        let callee = mb.declare_function("callee", 2);
        let mut f = mb.function("main", 0);
        let a = f.iconst(1);
        f.call(callee, &[a]); // wrong arity; builder doesn't check direct calls
        f.ret(None);
        f.finish();
        let mut c = mb.function("callee", 2);
        c.ret(None);
        c.finish();
        let m = mb.finish();
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("expects 2"), "{err}");
    }

    #[test]
    fn accepts_builder_output() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 2);
        let a = f.param(0);
        let b = f.param(1);
        let c = f.bin(BinOp::Mul, a, b);
        f.ret(Some(c));
        f.finish();
        assert!(verify_module(&mb.finish()).is_ok());
    }
}
