//! Structural verification of IR modules.

use std::collections::HashSet;

use crate::repr::{BlockId, Inst, Module, Term, Val};

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the error occurred (if any).
    pub func: Option<String>,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.func {
            Some(name) => write!(f, "in function {name:?}: {}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies module-wide invariants:
///
/// * unique function and global names,
/// * every referenced function/global/block id in range,
/// * values defined exactly once, and every use dominated by its
///   definition (a real dominator-tree check: earlier in the same
///   block, or in a block that dominates the using block on every
///   path from entry),
/// * `Alloca`/`Param` only in the entry block,
/// * call arity matches the callee signature.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let mut names = HashSet::new();
    for f in &m.funcs {
        if !names.insert(&f.name) {
            return Err(VerifyError {
                func: None,
                msg: format!("duplicate function name {:?}", f.name),
            });
        }
    }
    let mut gnames = HashSet::new();
    for g in &m.globals {
        if !gnames.insert(&g.name) {
            return Err(VerifyError {
                func: None,
                msg: format!("duplicate global name {:?}", g.name),
            });
        }
        if !g.align.is_power_of_two() {
            return Err(VerifyError {
                func: None,
                msg: format!(
                    "global {:?} alignment {} not a power of two",
                    g.name, g.align
                ),
            });
        }
    }
    for f in &m.funcs {
        verify_function(m, f).map_err(|msg| VerifyError {
            func: Some(f.name.clone()),
            msg,
        })?;
    }
    Ok(())
}

/// Immediate-style dominator sets, one bitset per block: `dom[b]`
/// holds every block that appears on all paths from entry to `b`.
/// Unreachable blocks keep the full set (vacuously dominated by
/// everything), which keeps the verifier lenient about dead code.
fn dominator_sets(nblocks: usize, preds: &[Vec<usize>]) -> Vec<Vec<u64>> {
    let words = nblocks.div_ceil(64);
    let full = vec![u64::MAX; words];
    let mut entry_only = vec![0u64; words];
    entry_only[0] = 1;
    let mut dom = vec![full.clone(); nblocks];
    dom[0] = entry_only;
    let mut changed = true;
    while changed {
        changed = false;
        for bi in 1..nblocks {
            if preds[bi].is_empty() {
                continue;
            }
            let mut new = full.clone();
            for &p in &preds[bi] {
                for (w, d) in new.iter_mut().zip(&dom[p]) {
                    *w &= d;
                }
            }
            new[bi / 64] |= 1 << (bi % 64);
            if new != dom[bi] {
                dom[bi] = new;
                changed = true;
            }
        }
    }
    dom
}

fn verify_function(m: &Module, f: &crate::repr::Function) -> Result<(), String> {
    if f.blocks.is_empty() {
        return Err("no blocks".into());
    }
    let nblocks = f.blocks.len();

    let check_bb = |b: BlockId| -> Result<(), String> {
        if b.0 as usize >= nblocks {
            return Err(format!("branch to nonexistent block {}", b.0));
        }
        Ok(())
    };

    // CFG edges (also validates every branch target before indexing).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for (bi, block) in f.blocks.iter().enumerate() {
        match &block.term {
            Term::Br(b) => {
                check_bb(*b)?;
                preds[b.0 as usize].push(bi);
            }
            Term::CondBr {
                then_bb, else_bb, ..
            } => {
                check_bb(*then_bb)?;
                check_bb(*else_bb)?;
                preds[then_bb.0 as usize].push(bi);
                preds[else_bb.0 as usize].push(bi);
            }
            Term::Ret(_) => {}
        }
    }
    let dom = dominator_sets(nblocks, &preds);
    let dominates = |def_b: usize, use_b: usize| dom[use_b][def_b / 64] >> (def_b % 64) & 1 == 1;

    // Definition sites: (block, instruction position) per value.
    let mut def_site: Vec<Option<(usize, usize)>> = vec![None; f.num_vals as usize];
    for (bi, block) in f.blocks.iter().enumerate() {
        for (pos, (res, inst)) in block.insts.iter().enumerate() {
            match (res, inst.has_result()) {
                (Some(v), true) => {
                    if v.0 >= f.num_vals {
                        return Err(format!("result %{} exceeds num_vals {}", v.0, f.num_vals));
                    }
                    if def_site[v.0 as usize].is_some() {
                        return Err(format!("value %{} defined twice", v.0));
                    }
                    def_site[v.0 as usize] = Some((bi, pos));
                }
                (None, false) => {}
                (Some(v), false) => return Err(format!("store assigned result %{}", v.0)),
                (None, true) => return Err("result-producing instruction without id".into()),
            }
        }
    }

    // A use at `(use_b, use_pos)` is legal iff the definition appears
    // earlier in the same block or in a strictly dominating block.
    // Terminator operands use `usize::MAX` (after every instruction).
    let check_val = |v: Val, use_b: usize, use_pos: usize| -> Result<(), String> {
        if v.0 as usize >= def_site.len() {
            return Err(format!("value %{} out of range", v.0));
        }
        let Some((def_b, def_pos)) = def_site[v.0 as usize] else {
            return Err(format!("value %{} used before definition", v.0));
        };
        if def_b == use_b {
            if def_pos < use_pos {
                Ok(())
            } else {
                Err(format!("value %{} used before definition", v.0))
            }
        } else if dominates(def_b, use_b) {
            Ok(())
        } else {
            Err(format!(
                "use of value %{} in block {:?} is not dominated by its definition in block {:?}",
                v.0, f.blocks[use_b].name, f.blocks[def_b].name
            ))
        }
    };

    for (bi, block) in f.blocks.iter().enumerate() {
        for (pos, (res, inst)) in block.insts.iter().enumerate() {
            let check_val = |v: Val| check_val(v, bi, pos);
            // Operand checks.
            match inst {
                Inst::Const(_) | Inst::GlobalAddr(_) | Inst::FuncAddr(_) => {}
                Inst::Param(n) => {
                    if *n >= f.params {
                        return Err(format!("param {n} out of range (have {})", f.params));
                    }
                    if bi != 0 {
                        return Err("param outside entry block".into());
                    }
                }
                Inst::Alloca { align, .. } => {
                    if bi != 0 {
                        return Err("alloca outside entry block".into());
                    }
                    if !align.is_power_of_two() {
                        return Err(format!("alloca alignment {align} not a power of two"));
                    }
                }
                Inst::Load { ptr, .. } => check_val(*ptr)?,
                Inst::Store { ptr, val, .. } => {
                    check_val(*ptr)?;
                    check_val(*val)?;
                }
                Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                    check_val(*a)?;
                    check_val(*b)?;
                }
                Inst::PtrAdd {
                    base, idx, scale, ..
                } => {
                    check_val(*base)?;
                    if let Some(i) = idx {
                        check_val(*i)?;
                    }
                    if !matches!(scale, 1 | 2 | 4 | 8) {
                        return Err(format!("invalid ptradd scale {scale}"));
                    }
                }
                Inst::Call { callee, args } => {
                    let cf = m
                        .funcs
                        .get(callee.0 as usize)
                        .ok_or_else(|| format!("call to nonexistent function {}", callee.0))?;
                    if args.len() != cf.params as usize {
                        return Err(format!(
                            "call to {:?} with {} args (expects {})",
                            cf.name,
                            args.len(),
                            cf.params
                        ));
                    }
                    for a in args {
                        check_val(*a)?;
                    }
                }
                Inst::CallInd { ptr, args } => {
                    check_val(*ptr)?;
                    for a in args {
                        check_val(*a)?;
                    }
                }
                Inst::CallExtern { ext, args } => {
                    if args.len() != ext.arity() {
                        return Err(format!(
                            "extern {} called with {} args (expects {})",
                            ext.name(),
                            args.len(),
                            ext.arity()
                        ));
                    }
                    for a in args {
                        check_val(*a)?;
                    }
                }
            }
            match inst {
                Inst::GlobalAddr(g) if g.0 as usize >= m.globals.len() => {
                    return Err(format!("reference to nonexistent global {}", g.0));
                }
                Inst::FuncAddr(fi) if fi.0 as usize >= m.funcs.len() => {
                    return Err(format!("reference to nonexistent function {}", fi.0));
                }
                _ => {}
            }
            let _ = res;
        }
        // Branch targets were validated when collecting edges;
        // terminator operands count as uses after every instruction.
        match &block.term {
            Term::CondBr { cond, .. } => check_val(*cond, bi, usize::MAX)?,
            Term::Ret(Some(v)) => check_val(*v, bi, usize::MAX)?,
            Term::Br(_) | Term::Ret(None) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::repr::{BinOp, Block, Function, Term};

    #[test]
    fn rejects_duplicate_function_names() {
        let mut m = Module::default();
        let f = Function {
            name: "f".into(),
            params: 0,
            blocks: vec![Block {
                name: "e".into(),
                insts: vec![],
                term: Term::Ret(None),
            }],
            num_vals: 0,
            no_instrument: false,
        };
        m.funcs.push(f.clone());
        m.funcs.push(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_use_before_def() {
        let mut m = Module::default();
        m.funcs.push(Function {
            name: "f".into(),
            params: 0,
            blocks: vec![Block {
                name: "e".into(),
                insts: vec![(
                    Some(Val(0)),
                    Inst::Bin {
                        op: BinOp::Add,
                        a: Val(1),
                        b: Val(1),
                    },
                )],
                term: Term::Ret(None),
            }],
            num_vals: 2,
            no_instrument: false,
        });
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("before definition"), "{err}");
    }

    #[test]
    fn rejects_non_dominating_def() {
        // entry --(condbr)--> {a, b};  a: %1 = const, br join;  b: br join;
        // join: use %1.  The definition in `a` appears *earlier in block
        // order* than the use, so the old linear-scan approximation
        // accepted this — but `a` does not dominate `join` (the path
        // entry→b→join never defines %1).
        let mut m = Module::default();
        m.funcs.push(Function {
            name: "f".into(),
            params: 0,
            blocks: vec![
                Block {
                    name: "entry".into(),
                    insts: vec![(Some(Val(0)), Inst::Const(0))],
                    term: Term::CondBr {
                        cond: Val(0),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                Block {
                    name: "a".into(),
                    insts: vec![(Some(Val(1)), Inst::Const(7))],
                    term: Term::Br(BlockId(3)),
                },
                Block {
                    name: "b".into(),
                    insts: vec![],
                    term: Term::Br(BlockId(3)),
                },
                Block {
                    name: "join".into(),
                    insts: vec![(
                        Some(Val(2)),
                        Inst::Bin {
                            op: BinOp::Add,
                            a: Val(1),
                            b: Val(1),
                        },
                    )],
                    term: Term::Ret(Some(Val(2))),
                },
            ],
            num_vals: 3,
            no_instrument: false,
        });
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("dominate"), "{err}");
    }

    #[test]
    fn accepts_dominating_def_across_blocks() {
        // entry defines %0 and branches through a diamond; both arms and
        // the join may use it, since entry dominates everything.
        let mut m = Module::default();
        m.funcs.push(Function {
            name: "f".into(),
            params: 0,
            blocks: vec![
                Block {
                    name: "entry".into(),
                    insts: vec![(Some(Val(0)), Inst::Const(1))],
                    term: Term::CondBr {
                        cond: Val(0),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                Block {
                    name: "a".into(),
                    insts: vec![],
                    term: Term::Br(BlockId(3)),
                },
                Block {
                    name: "b".into(),
                    insts: vec![],
                    term: Term::Br(BlockId(3)),
                },
                Block {
                    name: "join".into(),
                    insts: vec![(
                        Some(Val(1)),
                        Inst::Bin {
                            op: BinOp::Add,
                            a: Val(0),
                            b: Val(0),
                        },
                    )],
                    term: Term::Ret(Some(Val(1))),
                },
            ],
            num_vals: 2,
            no_instrument: false,
        });
        verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_bad_branch_target() {
        let mut m = Module::default();
        m.funcs.push(Function {
            name: "f".into(),
            params: 0,
            blocks: vec![Block {
                name: "e".into(),
                insts: vec![],
                term: Term::Br(BlockId(7)),
            }],
            num_vals: 0,
            no_instrument: false,
        });
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut mb = ModuleBuilder::new("t");
        let callee = mb.declare_function("callee", 2);
        let mut f = mb.function("main", 0);
        let a = f.iconst(1);
        f.call(callee, &[a]); // wrong arity; builder doesn't check direct calls
        f.ret(None);
        f.finish();
        let mut c = mb.function("callee", 2);
        c.ret(None);
        c.finish();
        let m = mb.finish();
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("expects 2"), "{err}");
    }

    #[test]
    fn accepts_builder_output() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 2);
        let a = f.param(0);
        let b = f.param(1);
        let c = f.bin(BinOp::Mul, a, b);
        f.ret(Some(c));
        f.finish();
        assert!(verify_module(&mb.finish()).is_ok());
    }
}
