//! # r2c-ir — the compiler intermediate representation
//!
//! A small, SSA-flavoured IR (values are defined once; mutable state
//! lives in `alloca`ed stack slots, as in `-O0` LLVM output) that the
//! R²C code generator lowers to machine code. The crate provides:
//!
//! * the IR data structures ([`Module`], [`Function`], [`Block`],
//!   [`Inst`]),
//! * a [`builder`] API for constructing functions programmatically
//!   (used by the workload generators),
//! * a textual format with a [`parser`] and [`printer`] (round-trip
//!   tested), convenient for examples and tests,
//! * a [`verify`] pass checking structural invariants, and
//! * a reference [`interp`]reter used for differential testing: every
//!   program must produce the same output under the interpreter and
//!   under every compiled + diversified configuration.

pub mod builder;
pub mod interp;
pub mod parser;
pub mod printer;
pub mod verify;

mod repr;

pub use builder::{FunctionBuilder, ModuleBuilder};
pub use interp::{interpret, InterpError, InterpResult};
pub use parser::{parse_module, ParseError};
pub use printer::print_module;
pub use repr::{
    BinOp, Block, BlockId, CmpOp, ExternFn, FuncId, Function, Global, GlobalId, GlobalInit, Inst,
    Module, Term, Val,
};
pub use verify::{verify_module, VerifyError};
