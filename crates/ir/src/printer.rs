//! Textual printing of IR modules.
//!
//! The format round-trips through [`crate::parser::parse_module`]; see
//! that module for the grammar.

use std::fmt::Write as _;

use crate::repr::{GlobalInit, Inst, Module, Term, Val};

fn val(v: Val) -> String {
    format!("%{}", v.0)
}

/// Renders a module in the textual IR format.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\"", m.name);
    if !m.globals.is_empty() {
        out.push('\n');
    }
    for g in &m.globals {
        match &g.init {
            GlobalInit::Zero(n) => {
                let _ = writeln!(out, "global @{} zero {} align {}", g.name, n, g.align);
            }
            GlobalInit::Words(w) => {
                let words: Vec<String> = w.iter().map(|x| x.to_string()).collect();
                let _ = writeln!(
                    out,
                    "global @{} words [{}] align {}",
                    g.name,
                    words.join(", "),
                    g.align
                );
            }
            GlobalInit::FuncPtr(f) => {
                let _ = writeln!(
                    out,
                    "global @{} funcptr @{} align {}",
                    g.name, m.funcs[f.0 as usize].name, g.align
                );
            }
        }
    }
    for f in &m.funcs {
        let _ = write!(out, "\nfunc @{}({})", f.name, f.params);
        if f.no_instrument {
            out.push_str(" noinstrument");
        }
        out.push_str(" {\n");
        for (bi, b) in f.blocks.iter().enumerate() {
            let _ = writeln!(out, "{}.{}:", b.name, bi);
            for (res, inst) in &b.insts {
                out.push_str("  ");
                if let Some(r) = res {
                    let _ = write!(out, "{} = ", val(*r));
                }
                print_inst(&mut out, m, inst);
                out.push('\n');
            }
            out.push_str("  ");
            match &b.term {
                Term::Br(t) => {
                    let _ = writeln!(out, "br {}.{}", f.blocks[t.0 as usize].name, t.0);
                }
                Term::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let _ = writeln!(
                        out,
                        "condbr {}, {}.{}, {}.{}",
                        val(*cond),
                        f.blocks[then_bb.0 as usize].name,
                        then_bb.0,
                        f.blocks[else_bb.0 as usize].name,
                        else_bb.0
                    );
                }
                Term::Ret(Some(v)) => {
                    let _ = writeln!(out, "ret {}", val(*v));
                }
                Term::Ret(None) => out.push_str("ret\n"),
            }
        }
        out.push_str("}\n");
    }
    out
}

fn print_inst(out: &mut String, m: &Module, inst: &Inst) {
    match inst {
        Inst::Const(c) => {
            let _ = write!(out, "const {c}");
        }
        Inst::Param(n) => {
            let _ = write!(out, "param {n}");
        }
        Inst::Alloca { size, align } => {
            let _ = write!(out, "alloca {size} align {align}");
        }
        Inst::Load { ptr, off } => {
            let _ = write!(out, "load {} + {}", val(*ptr), off);
        }
        Inst::Store { ptr, off, val: v } => {
            let _ = write!(out, "store {} + {}, {}", val(*ptr), off, val(*v));
        }
        Inst::Bin { op, a, b } => {
            let _ = write!(out, "{} {}, {}", op.mnemonic(), val(*a), val(*b));
        }
        Inst::Cmp { op, a, b } => {
            let _ = write!(out, "cmp {} {}, {}", op.mnemonic(), val(*a), val(*b));
        }
        Inst::GlobalAddr(g) => {
            let _ = write!(out, "addrof @{}", m.globals[g.0 as usize].name);
        }
        Inst::FuncAddr(f) => {
            let _ = write!(out, "funcref @{}", m.funcs[f.0 as usize].name);
        }
        Inst::PtrAdd {
            base,
            idx,
            scale,
            disp,
        } => {
            let _ = write!(out, "ptradd {}", val(*base));
            if let Some(i) = idx {
                let _ = write!(out, " + {} * {}", val(*i), scale);
            }
            let _ = write!(out, " + {disp}");
        }
        Inst::Call { callee, args } => {
            let list: Vec<String> = args.iter().map(|a| val(*a)).collect();
            let _ = write!(
                out,
                "call @{}({})",
                m.funcs[callee.0 as usize].name,
                list.join(", ")
            );
        }
        Inst::CallInd { ptr, args } => {
            let list: Vec<String> = args.iter().map(|a| val(*a)).collect();
            let _ = write!(out, "callind {}({})", val(*ptr), list.join(", "));
        }
        Inst::CallExtern { ext, args } => {
            let list: Vec<String> = args.iter().map(|a| val(*a)).collect();
            let _ = write!(out, "extern {}({})", ext.name(), list.join(", "));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::repr::{BinOp, CmpOp, ExternFn, GlobalInit};

    #[test]
    fn prints_all_constructs() {
        let mut mb = ModuleBuilder::new("demo");
        let g = mb.global("buf", GlobalInit::Zero(64), 8);
        let _t = mb.global("tab", GlobalInit::Words(vec![1, -2, 3]), 16);
        let main_id = mb.declare_function("main", 1);
        let _fp = mb.global("fp", GlobalInit::FuncPtr(main_id), 8);
        let mut f = mb.function("main", 1);
        let p = f.param(0);
        let c = f.iconst(5);
        let s = f.bin(BinOp::Add, p, c);
        let q = f.cmp(CmpOp::Lt, p, s);
        let ga = f.global_addr(g);
        let pa = f.ptr_add(ga, Some(p), 8, 16);
        f.store(pa, 0, s);
        let l = f.load(pa, 0);
        let fr = f.func_addr(main_id);
        let exit = f.new_block("exit");
        f.cond_br(q, exit, exit);
        f.switch_to(exit);
        f.call_extern(ExternFn::PrintI64, &[l]);
        let _ci = f.call_ind(fr, &[l]);
        f.ret(Some(l));
        f.finish();
        let m = mb.finish();
        let text = print_module(&m);
        for needle in [
            "module \"demo\"",
            "global @buf zero 64 align 8",
            "words [1, -2, 3]",
            "funcptr @main",
            "func @main(1)",
            "param 0",
            "cmp lt",
            "ptradd",
            "condbr",
            "extern print",
            "callind",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
