//! Parser for the textual IR format.
//!
//! Grammar (line-oriented; `#` starts a comment):
//!
//! ```text
//! module  := 'module' STRING  decl*
//! decl    := global | func
//! global  := 'global' '@'NAME init 'align' INT
//! init    := 'zero' INT | 'words' '[' INT,* ']' | 'funcptr' '@'NAME
//! func    := 'func' '@'NAME '(' INT ')' ['noinstrument'] '{' block* '}'
//! block   := LABEL ':' line*
//! line    := ['%'N '='] inst | term
//! inst    := 'const' INT | 'param' INT | 'alloca' INT 'align' INT
//!          | 'load' VAL '+' INT | 'store' VAL '+' INT ',' VAL
//!          | BINOP VAL ',' VAL | 'cmp' CC VAL ',' VAL
//!          | 'addrof' '@'NAME | 'funcref' '@'NAME
//!          | 'ptradd' VAL ['+' VAL '*' SCALE] '+' INT
//!          | 'call' '@'NAME '(' VAL,* ')' | 'callind' VAL '(' VAL,* ')'
//!          | 'extern' NAME '(' VAL,* ')'
//! term    := 'br' LABEL | 'condbr' VAL ',' LABEL ',' LABEL
//!          | 'ret' [VAL]
//! ```
//!
//! Labels may carry a printed suffix `.N`; it is ignored on input, so
//! printer output parses back unchanged (round-trip tested).

use std::collections::HashMap;

use crate::repr::{
    BinOp, Block, BlockId, CmpOp, ExternFn, FuncId, Function, Global, GlobalInit, Inst, Module,
    Term, Val,
};

/// A parse failure with its (1-based) line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// Parses the textual IR format into a [`Module`].
///
/// The result is *not* automatically verified; callers typically follow
/// with [`crate::verify::verify_module`].
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let mut p = Parser::new(src);
    p.parse()
}

struct PendingFixup {
    func: usize,
    block: usize,
    inst: Option<usize>,
    name: String,
    line: usize,
    /// True if the fixup is a `funcref`/`call` target, false for a
    /// funcptr global initializer.
    kind: FixupKind,
}

enum FixupKind {
    CallTarget,
    FuncRef,
    GlobalInit(usize),
}

struct Parser<'s> {
    lines: Vec<(usize, &'s str)>,
    pos: usize,
    module: Module,
    fixups: Vec<PendingFixup>,
}

impl<'s> Parser<'s> {
    fn new(src: &'s str) -> Parser<'s> {
        let lines = src
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = match l.find('#') {
                    Some(c) => &l[..c],
                    None => l,
                };
                (i + 1, l.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser {
            lines,
            pos: 0,
            module: Module::default(),
            fixups: Vec::new(),
        }
    }

    fn peek(&self) -> Option<(usize, &'s str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'s str)> {
        let l = self.peek();
        self.pos += 1;
        l
    }

    fn parse(&mut self) -> Result<Module, ParseError> {
        // Optional module header.
        if let Some((_, l)) = self.peek() {
            if let Some(rest) = l.strip_prefix("module") {
                self.module.name = rest.trim().trim_matches('"').to_string();
                self.pos += 1;
            }
        }
        while let Some((ln, l)) = self.peek() {
            if l.starts_with("global") {
                self.parse_global()?;
            } else if l.starts_with("func") {
                self.parse_func()?;
            } else {
                return err(ln, format!("expected 'global' or 'func', got {l:?}"));
            }
        }
        self.apply_fixups()?;
        Ok(std::mem::take(&mut self.module))
    }

    fn apply_fixups(&mut self) -> Result<(), ParseError> {
        let by_name: HashMap<String, u32> = self
            .module
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i as u32))
            .collect();
        for fx in std::mem::take(&mut self.fixups) {
            let Some(&id) = by_name.get(&fx.name) else {
                return err(fx.line, format!("unknown function @{}", fx.name));
            };
            match fx.kind {
                FixupKind::GlobalInit(g) => {
                    self.module.globals[g].init = GlobalInit::FuncPtr(FuncId(id));
                }
                FixupKind::CallTarget | FixupKind::FuncRef => {
                    let inst = &mut self.module.funcs[fx.func].blocks[fx.block].insts
                        [fx.inst.expect("inst fixup")]
                    .1;
                    match inst {
                        Inst::Call { callee, .. } => *callee = FuncId(id),
                        Inst::FuncAddr(f) => *f = FuncId(id),
                        _ => unreachable!("fixup points at non-call inst"),
                    }
                }
            }
        }
        Ok(())
    }

    fn parse_global(&mut self) -> Result<(), ParseError> {
        let (ln, l) = self.next().unwrap();
        let toks = Tok::new(l);
        let mut t = toks;
        t.expect(ln, "global")?;
        let name = t.at_name(ln)?;
        let kw = t.word(ln)?;
        let init = match kw {
            "zero" => GlobalInit::Zero(t.int(ln)? as u32),
            "words" => {
                let list = t.bracket_list(ln)?;
                GlobalInit::Words(list)
            }
            "funcptr" => {
                let fname = t.at_name(ln)?;
                self.fixups.push(PendingFixup {
                    func: 0,
                    block: 0,
                    inst: None,
                    name: fname.to_string(),
                    line: ln,
                    kind: FixupKind::GlobalInit(self.module.globals.len()),
                });
                GlobalInit::Zero(8) // placeholder until fixup
            }
            other => return err(ln, format!("unknown global init {other:?}")),
        };
        t.expect(ln, "align")?;
        let align = t.int(ln)? as u32;
        self.module.globals.push(Global {
            name: name.to_string(),
            init,
            align,
        });
        Ok(())
    }

    fn parse_func(&mut self) -> Result<(), ParseError> {
        let (ln, l) = self.next().unwrap();
        // func @name(N) [noinstrument] {
        let rest = l.strip_prefix("func").unwrap().trim();
        let Some(rest) = rest.strip_prefix('@') else {
            return err(ln, "expected '@name' after func");
        };
        let paren = rest.find('(').ok_or(ParseError {
            line: ln,
            msg: "expected '('".into(),
        })?;
        let name = &rest[..paren];
        let close = rest.find(')').ok_or(ParseError {
            line: ln,
            msg: "expected ')'".into(),
        })?;
        let params: u32 = rest[paren + 1..close]
            .trim()
            .parse()
            .map_err(|_| ParseError {
                line: ln,
                msg: "bad param count".into(),
            })?;
        let tail = rest[close + 1..].trim();
        let no_instrument = tail.contains("noinstrument");
        if !tail.ends_with('{') {
            return err(ln, "expected '{' at end of func header");
        }

        // First pass over the body: collect block labels. Each label
        // is indexed both by its exact spelling (the printer emits a
        // unique `name.N` per block, so printed branches resolve
        // exactly even when two blocks share a base name) and by its
        // canonical base (first occurrence wins), so hand-written
        // sources can keep branching to plain `name`.
        let body_start = self.pos;
        let mut labels: HashMap<String, u32> = HashMap::new();
        let mut nblocks = 0u32;
        let depth = 0usize;
        loop {
            let Some((ln2, l2)) = self.next() else {
                return err(ln, "unterminated function body");
            };
            if l2 == "}" && depth == 0 {
                break;
            }
            let _ = ln2;
            if let Some(label) = l2.strip_suffix(':') {
                let id = nblocks;
                nblocks += 1;
                labels.entry(label.to_string()).or_insert(id);
                labels.entry(canonical_label(label)).or_insert(id);
            }
        }
        let body_end = self.pos - 1;

        // Second pass: parse instructions.
        let mut blocks: Vec<Block> = Vec::new();
        let mut num_vals: u32 = 0;
        let func_index = self.module.funcs.len();
        let mut cur: Option<usize> = None;
        for i in body_start..body_end {
            let (ln2, l2) = self.lines[i];
            if let Some(label) = l2.strip_suffix(':') {
                blocks.push(Block {
                    name: canonical_label(label),
                    insts: Vec::new(),
                    term: Term::Ret(None),
                });
                cur = Some(blocks.len() - 1);
                continue;
            }
            let Some(cb) = cur else {
                return err(ln2, "instruction before first block label");
            };
            let mut t = Tok::new(l2);
            // Result id?
            let (res, word) = if let Some(v) = t.try_val() {
                t.expect(ln2, "=")?;
                (Some(v), t.word(ln2)?)
            } else {
                (None, t.word(ln2)?)
            };
            if let Some(v) = res {
                num_vals = num_vals.max(v.0 + 1);
            }
            match word {
                "br" => {
                    let lbl = t.word(ln2)?;
                    let id = resolve_label(&labels, lbl, ln2)?;
                    blocks[cb].term = Term::Br(id);
                }
                "condbr" => {
                    let cond = t.val(ln2)?;
                    t.comma(ln2)?;
                    let a = resolve_label(&labels, t.word(ln2)?, ln2)?;
                    t.comma(ln2)?;
                    let b = resolve_label(&labels, t.word(ln2)?, ln2)?;
                    blocks[cb].term = Term::CondBr {
                        cond,
                        then_bb: a,
                        else_bb: b,
                    };
                }
                "ret" => {
                    let v = t.try_val();
                    blocks[cb].term = Term::Ret(v);
                }
                _ => {
                    let inst =
                        self.parse_inst(word, &mut t, ln2, func_index, cb, blocks[cb].insts.len())?;
                    blocks[cb].insts.push((res, inst));
                }
            }
        }
        if blocks.is_empty() {
            return err(ln, "function with no blocks");
        }
        self.module.funcs.push(Function {
            name: name.to_string(),
            params,
            blocks,
            num_vals,
            no_instrument,
        });
        Ok(())
    }

    fn parse_inst(
        &mut self,
        word: &str,
        t: &mut Tok<'_>,
        ln: usize,
        func: usize,
        block: usize,
        inst_idx: usize,
    ) -> Result<Inst, ParseError> {
        let binop = |w: &str| -> Option<BinOp> {
            Some(match w {
                "add" => BinOp::Add,
                "sub" => BinOp::Sub,
                "mul" => BinOp::Mul,
                "div" => BinOp::Div,
                "rem" => BinOp::Rem,
                "and" => BinOp::And,
                "or" => BinOp::Or,
                "xor" => BinOp::Xor,
                "shl" => BinOp::Shl,
                "shr" => BinOp::Shr,
                "sar" => BinOp::Sar,
                _ => return None,
            })
        };
        Ok(match word {
            "const" => Inst::Const(t.int(ln)?),
            "param" => Inst::Param(t.int(ln)? as u32),
            "alloca" => {
                let size = t.int(ln)? as u32;
                t.expect(ln, "align")?;
                Inst::Alloca {
                    size,
                    align: t.int(ln)? as u32,
                }
            }
            "load" => {
                let ptr = t.val(ln)?;
                t.expect(ln, "+")?;
                Inst::Load {
                    ptr,
                    off: t.int(ln)? as i32,
                }
            }
            "store" => {
                let ptr = t.val(ln)?;
                t.expect(ln, "+")?;
                let off = t.int(ln)? as i32;
                t.comma(ln)?;
                Inst::Store {
                    ptr,
                    off,
                    val: t.val(ln)?,
                }
            }
            "cmp" => {
                let cc = match t.word(ln)? {
                    "eq" => CmpOp::Eq,
                    "ne" => CmpOp::Ne,
                    "lt" => CmpOp::Lt,
                    "le" => CmpOp::Le,
                    "gt" => CmpOp::Gt,
                    "ge" => CmpOp::Ge,
                    other => return err(ln, format!("unknown condition {other:?}")),
                };
                let a = t.val(ln)?;
                t.comma(ln)?;
                Inst::Cmp {
                    op: cc,
                    a,
                    b: t.val(ln)?,
                }
            }
            "addrof" => {
                let g = t.at_name(ln)?;
                let id = self
                    .module
                    .global_by_name(g)
                    .or({
                        // Globals may only be referenced after declaration.
                        None
                    })
                    .ok_or(ParseError {
                        line: ln,
                        msg: format!("unknown global @{g}"),
                    })?;
                Inst::GlobalAddr(id)
            }
            "funcref" => {
                let f = t.at_name(ln)?;
                self.fixups.push(PendingFixup {
                    func,
                    block,
                    inst: Some(inst_idx),
                    name: f.to_string(),
                    line: ln,
                    kind: FixupKind::FuncRef,
                });
                Inst::FuncAddr(FuncId(0)) // fixed up later
            }
            "ptradd" => {
                let base = t.val(ln)?;
                t.expect(ln, "+")?;
                if let Some(idx) = t.try_val() {
                    t.expect(ln, "*")?;
                    let scale = t.int(ln)? as u8;
                    t.expect(ln, "+")?;
                    Inst::PtrAdd {
                        base,
                        idx: Some(idx),
                        scale,
                        disp: t.int(ln)? as i32,
                    }
                } else {
                    Inst::PtrAdd {
                        base,
                        idx: None,
                        scale: 1,
                        disp: t.int(ln)? as i32,
                    }
                }
            }
            "call" => {
                let f = t.at_name(ln)?;
                let args = t.paren_vals(ln)?;
                self.fixups.push(PendingFixup {
                    func,
                    block,
                    inst: Some(inst_idx),
                    name: f.to_string(),
                    line: ln,
                    kind: FixupKind::CallTarget,
                });
                Inst::Call {
                    callee: FuncId(0),
                    args,
                }
            }
            "callind" => {
                let ptr = t.val(ln)?;
                let args = t.paren_vals(ln)?;
                Inst::CallInd { ptr, args }
            }
            "extern" => {
                let name = t.word_before_paren(ln)?;
                let ext = ExternFn::from_name(name).ok_or(ParseError {
                    line: ln,
                    msg: format!("unknown extern {name:?}"),
                })?;
                let args = t.paren_vals(ln)?;
                Inst::CallExtern { ext, args }
            }
            other => match binop(other) {
                Some(op) => {
                    let a = t.val(ln)?;
                    t.comma(ln)?;
                    Inst::Bin {
                        op,
                        a,
                        b: t.val(ln)?,
                    }
                }
                None => return err(ln, format!("unknown instruction {other:?}")),
            },
        })
    }
}

/// Strips the printer's `.N` suffix from a label.
fn canonical_label(label: &str) -> String {
    match label.rfind('.') {
        Some(dot) if label[dot + 1..].chars().all(|c| c.is_ascii_digit()) => {
            label[..dot].to_string()
        }
        _ => label.to_string(),
    }
}

fn resolve_label(
    labels: &HashMap<String, u32>,
    tok: &str,
    ln: usize,
) -> Result<BlockId, ParseError> {
    // Exact spelling first (printer output branches to `name.N`), then
    // the canonical base for hand-written `br name`.
    let exact = tok.trim_end_matches(',');
    if let Some(&i) = labels.get(exact) {
        return Ok(BlockId(i));
    }
    let base = canonical_label(exact);
    labels.get(&base).map(|&i| BlockId(i)).ok_or(ParseError {
        line: ln,
        msg: format!("unknown block label {base:?}"),
    })
}

/// A tiny whitespace/punctuation tokenizer over one line.
struct Tok<'s> {
    rest: &'s str,
}

impl<'s> Tok<'s> {
    fn new(s: &'s str) -> Tok<'s> {
        Tok { rest: s.trim() }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn word(&mut self, ln: usize) -> Result<&'s str, ParseError> {
        self.skip_ws();
        if self.rest.is_empty() {
            return err(ln, "unexpected end of line");
        }
        let end = self
            .rest
            .find(|c: char| c.is_whitespace() || c == ',' || c == '(')
            .unwrap_or(self.rest.len());
        let (w, rest) = self.rest.split_at(end.max(1));
        self.rest = rest;
        Ok(w)
    }

    fn word_before_paren(&mut self, ln: usize) -> Result<&'s str, ParseError> {
        self.skip_ws();
        let end = self.rest.find('(').ok_or(ParseError {
            line: ln,
            msg: "expected '('".into(),
        })?;
        let (w, rest) = self.rest.split_at(end);
        self.rest = rest;
        Ok(w.trim())
    }

    fn expect(&mut self, ln: usize, tok: &str) -> Result<(), ParseError> {
        self.skip_ws();
        match self.rest.strip_prefix(tok) {
            Some(rest) => {
                self.rest = rest;
                Ok(())
            }
            None => err(ln, format!("expected {tok:?}, found {:?}", self.rest)),
        }
    }

    fn comma(&mut self, ln: usize) -> Result<(), ParseError> {
        self.expect(ln, ",")
    }

    fn try_val(&mut self) -> Option<Val> {
        self.skip_ws();
        let rest = self.rest.strip_prefix('%')?;
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if end == 0 {
            return None;
        }
        let n: u32 = rest[..end].parse().ok()?;
        self.rest = &rest[end..];
        Some(Val(n))
    }

    fn val(&mut self, ln: usize) -> Result<Val, ParseError> {
        self.try_val().ok_or(ParseError {
            line: ln,
            msg: "expected a value (%N)".into(),
        })
    }

    fn int(&mut self, ln: usize) -> Result<i64, ParseError> {
        self.skip_ws();
        let neg = self.rest.starts_with('-');
        let body = if neg { &self.rest[1..] } else { self.rest };
        let end = body
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(body.len());
        if end == 0 {
            return err(ln, format!("expected an integer, found {:?}", self.rest));
        }
        let n: i64 = body[..end].parse().map_err(|_| ParseError {
            line: ln,
            msg: "integer out of range".into(),
        })?;
        self.rest = &body[end..];
        Ok(if neg { -n } else { n })
    }

    fn at_name(&mut self, ln: usize) -> Result<&'s str, ParseError> {
        self.skip_ws();
        let rest = self.rest.strip_prefix('@').ok_or(ParseError {
            line: ln,
            msg: "expected '@name'".into(),
        })?;
        let end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
            .unwrap_or(rest.len());
        let (name, tail) = rest.split_at(end);
        self.rest = tail;
        Ok(name)
    }

    fn bracket_list(&mut self, ln: usize) -> Result<Vec<i64>, ParseError> {
        self.expect(ln, "[")?;
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if let Some(rest) = self.rest.strip_prefix(']') {
                self.rest = rest;
                return Ok(out);
            }
            out.push(self.int(ln)?);
            self.skip_ws();
            if let Some(rest) = self.rest.strip_prefix(',') {
                self.rest = rest;
            }
        }
    }

    fn paren_vals(&mut self, ln: usize) -> Result<Vec<Val>, ParseError> {
        self.expect(ln, "(")?;
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if let Some(rest) = self.rest.strip_prefix(')') {
                self.rest = rest;
                return Ok(out);
            }
            out.push(self.val(ln)?);
            self.skip_ws();
            if let Some(rest) = self.rest.strip_prefix(',') {
                self.rest = rest;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;
    use crate::verify::verify_module;

    const SAMPLE: &str = r#"
module "sample"

global @buf zero 64 align 8
global @tab words [10, 20, -30] align 16
global @handler funcptr @main align 8

func @helper(2) {
entry:
  %0 = param 0
  %1 = param 1
  %2 = add %0, %1
  ret %2
}

func @main(0) {
entry:
  %0 = const 7
  %1 = const 3
  %2 = call @helper(%0, %1)   # a direct call
  %3 = addrof @tab
  %4 = load %3 + 8
  %5 = add %2, %4
  %6 = cmp gt %5, %0
  condbr %6, big, small
big:
  %7 = extern print(%5)
  ret %5
small:
  ret %0
}
"#;

    #[test]
    fn parses_and_verifies_sample() {
        let m = parse_module(SAMPLE).unwrap();
        assert!(verify_module(&m).is_ok());
        assert_eq!(m.funcs.len(), 2);
        assert_eq!(m.globals.len(), 3);
        assert!(
            matches!(m.globals[2].init, GlobalInit::FuncPtr(f) if m.funcs[f.0 as usize].name == "main")
        );
    }

    #[test]
    fn roundtrip_through_printer() {
        let m1 = parse_module(SAMPLE).unwrap();
        let text = print_module(&m1);
        let m2 = parse_module(&text).unwrap();
        assert_eq!(m1, m2, "print/parse round trip changed the module:\n{text}");
    }

    #[test]
    fn error_reports_line() {
        let src = "func @f(0) {\nentry:\n  %0 = bogus 1\n  ret\n}\n";
        let e = parse_module(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("bogus"));
    }

    #[test]
    fn unknown_label_rejected() {
        let src = "func @f(0) {\nentry:\n  br nowhere\n}\n";
        assert!(parse_module(src).is_err());
    }

    #[test]
    fn unknown_call_target_rejected() {
        let src = "func @f(0) {\nentry:\n  %0 = call @ghost()\n  ret\n}\n";
        let e = parse_module(src).unwrap_err();
        assert!(e.msg.contains("ghost"));
    }

    #[test]
    fn negative_numbers_and_comments() {
        let src = "global @g words [-1, -2] align 8\nfunc @f(0) {\nentry: # comment\n  %0 = const -42\n  ret %0\n}\n";
        let m = parse_module(src).unwrap();
        assert_eq!(m.globals[0].init, GlobalInit::Words(vec![-1, -2]));
    }

    #[test]
    fn duplicate_block_names_roundtrip() {
        // Two blocks sharing the base name "body": the printer labels
        // them body.1 / body.2 and branches to the exact spelling, so
        // the round trip must keep them distinct (keying labels only by
        // base name used to collapse both onto the first block).
        use crate::repr::{Block, Function, Term};
        let mut m = Module::default();
        m.funcs.push(Function {
            name: "f".into(),
            params: 0,
            blocks: vec![
                Block {
                    name: "entry".into(),
                    insts: vec![(Some(Val(0)), Inst::Const(1))],
                    term: Term::CondBr {
                        cond: Val(0),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                Block {
                    name: "body".into(),
                    insts: vec![],
                    term: Term::Ret(None),
                },
                Block {
                    name: "body".into(),
                    insts: vec![(Some(Val(1)), Inst::Const(2))],
                    term: Term::Ret(Some(Val(1))),
                },
            ],
            num_vals: 2,
            no_instrument: false,
        });
        let text = crate::printer::print_module(&m);
        let back = parse_module(&text).unwrap();
        assert_eq!(m, back, "round trip changed the module:\n{text}");
    }

    #[test]
    fn ptradd_forms() {
        let src = "func @f(1) {\nentry:\n  %0 = param 0\n  %1 = alloca 64 align 8\n  %2 = ptradd %1 + %0 * 8 + 16\n  %3 = ptradd %1 + 24\n  ret\n}\n";
        let m = parse_module(src).unwrap();
        assert!(verify_module(&m).is_ok());
        let insts = &m.funcs[0].blocks[0].insts;
        assert!(matches!(
            insts[2].1,
            Inst::PtrAdd {
                idx: Some(_),
                scale: 8,
                disp: 16,
                ..
            }
        ));
        assert!(matches!(
            insts[3].1,
            Inst::PtrAdd {
                idx: None,
                disp: 24,
                ..
            }
        ));
    }
}
