//! Property-based round-trip testing of the textual IR format:
//! `parse(print(m)) == m` for randomly generated modules, and the
//! interpreter agrees before and after the round trip.

use proptest::prelude::*;

use r2c_ir::{
    interpret, parse_module, print_module, verify_module, BinOp, CmpOp, ExternFn, GlobalInit,
    Module, ModuleBuilder,
};

/// Per-function recipe: (binop tags + constants, loop iterations,
/// whether to fold in a global load).
type FuncRecipe = (Vec<(u8, i64)>, u8, bool);

#[derive(Clone, Debug)]
struct Recipe {
    globals: Vec<(u8, Vec<i64>)>,
    funcs: Vec<FuncRecipe>,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        proptest::collection::vec(
            (0u8..3, proptest::collection::vec(-100i64..100, 1..5)),
            0..4,
        ),
        proptest::collection::vec(
            (
                proptest::collection::vec((0u8..8, -500i64..500), 1..10),
                1u8..5,
                any::<bool>(),
            ),
            1..5,
        ),
    )
        .prop_map(|(globals, funcs)| Recipe { globals, funcs })
}

fn build(r: &Recipe) -> Module {
    let mut mb = ModuleBuilder::new("roundtrip");
    let mut gids = Vec::new();
    for (i, (kind, words)) in r.globals.iter().enumerate() {
        let init = match kind {
            0 => GlobalInit::Zero(8 * words.len() as u32),
            _ => GlobalInit::Words(words.clone()),
        };
        gids.push(mb.global(&format!("g{i}"), init, 8));
    }
    let n = r.funcs.len();
    let ids: Vec<_> = (0..n)
        .map(|i| mb.declare_function(&format!("f{i}"), 1))
        .collect();
    for (i, (ops, iters, use_global)) in r.funcs.iter().enumerate() {
        let mut f = mb.function(&format!("f{i}"), 1);
        let x = f.param(0);
        let slot = f.alloca(16, 8);
        f.store(slot, 0, x);
        let z = f.iconst(0);
        f.store(slot, 8, z);
        let body = f.new_block("body");
        let done = f.new_block("done");
        f.br(body);
        f.switch_to(body);
        let mut v = f.load(slot, 0);
        for &(tag, c) in ops {
            let cv = f.iconst(c);
            let op = match tag {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Xor,
                4 => BinOp::And,
                5 => BinOp::Or,
                6 => BinOp::Shl,
                _ => BinOp::Sar,
            };
            // Bound shift amounts.
            let cv = if matches!(op, BinOp::Shl | BinOp::Sar) {
                let _ = cv;
                f.iconst((c.unsigned_abs() % 16) as i64)
            } else {
                cv
            };
            v = f.bin(op, v, cv);
        }
        if *use_global && !gids.is_empty() {
            let ga = f.global_addr(gids[i % gids.len()]);
            let w = f.load(ga, 0);
            v = f.bin(BinOp::Add, v, w);
        }
        if i + 1 < n {
            v = f.call(ids[i + 1], &[v]);
        }
        f.store(slot, 0, v);
        let cur = f.load(slot, 8);
        let one = f.iconst(1);
        let nxt = f.bin(BinOp::Add, cur, one);
        f.store(slot, 8, nxt);
        let lim = f.iconst(*iters as i64);
        let again = f.cmp(CmpOp::Lt, nxt, lim);
        f.cond_br(again, body, done);
        f.switch_to(done);
        let out = f.load(slot, 0);
        f.ret(Some(out));
        f.finish();
    }
    let mut f = mb.function("main", 0);
    let s = f.iconst(9);
    let r0 = f.call(ids[0], &[s]);
    let mask = f.iconst(0xFFFF);
    let folded = f.bin(BinOp::And, r0, mask);
    f.call_extern(ExternFn::PrintI64, &[folded]);
    f.ret(Some(folded));
    f.finish();
    mb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: if cfg!(debug_assertions) { 12 } else { 48 } })]

    #[test]
    fn print_parse_roundtrip(r in recipe()) {
        let m1 = build(&r);
        verify_module(&m1).unwrap();
        let text = print_module(&m1);
        let m2 = parse_module(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(&m1, &m2);
        // And a second round trip is a fixpoint.
        let text2 = print_module(&m2);
        prop_assert_eq!(text, text2);
    }

    #[test]
    fn interpreter_agrees_across_roundtrip(r in recipe()) {
        let m1 = build(&r);
        let m2 = parse_module(&print_module(&m1)).unwrap();
        let a = interpret(&m1, "main", 10_000_000).unwrap();
        let b = interpret(&m2, "main", 10_000_000).unwrap();
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: if cfg!(debug_assertions) { 32 } else { 256 } })]

    /// The parser must never panic: arbitrary input yields Ok or a
    /// ParseError with a line number, nothing else.
    #[test]
    fn parser_never_panics(input in "[ -~\n]{0,400}") {
        match parse_module(&input) {
            Ok(m) => { let _ = verify_module(&m); }
            Err(e) => prop_assert!(e.line >= 1),
        }
    }

    /// Mutated valid programs (byte substitutions) also never panic the
    /// parser.
    #[test]
    fn mutated_programs_never_panic(pos in 0usize..200, byte in 32u8..127) {
        let base = "func @f(1) {\nentry:\n  %0 = param 0\n  %1 = const 3\n  %2 = add %0, %1\n  ret %2\n}\n";
        let mut bytes = base.as_bytes().to_vec();
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        if let Ok(s) = String::from_utf8(bytes) {
            let _ = parse_module(&s);
        }
    }
}
