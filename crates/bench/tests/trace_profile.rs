//! Integration tests for the r2c-trace layer: the tracer must be
//! invisible to the simulation (bit-identical [`ExecStats`]), its
//! attribution must be complete (self cycles sum to the total), and the
//! heap-page-lifetime fix must show up in end-of-run residency (the
//! golden check behind the re-derived §6.2.5 numbers).

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_vm::{ExitStatus, MachineKind, Perms, TraceConfig, Vm, VmConfig, PAGE_SIZE};
use r2c_workloads::{spec_workloads, Scale, ServerKind};

/// Runs the image twice on `machine` — untraced and traced — asserting
/// bit-identical stats, and returns the traced VM for inspection.
fn run_traced_checked(image: &r2c_vm::Image, machine: MachineKind) -> Vm {
    let cfg = VmConfig::new(machine.config());
    let mut plain = Vm::new(image, cfg);
    let untraced = plain.run();
    assert!(matches!(untraced.status, ExitStatus::Exited(_)));

    let mut vm = Vm::new(image, cfg);
    vm.enable_trace(image, TraceConfig::default());
    let traced = vm.run();
    assert_eq!(traced.status, untraced.status);
    assert_eq!(
        traced.stats,
        untraced.stats,
        "tracing must not perturb the simulation ({})",
        machine.name()
    );
    vm
}

/// Zero-overhead-when-off contract, spec-style workload, all machines.
#[test]
fn tracing_is_invisible_on_spec_workload() {
    let w = &spec_workloads(Scale::Test)[4]; // omnetpp: call-heavy
    let image = R2cCompiler::new(R2cConfig::full(7))
        .build(&w.module)
        .unwrap();
    for machine in MachineKind::ALL {
        run_traced_checked(&image, machine);
    }
}

/// Same contract on the web server, whose BTDP constructor exercises
/// the malloc/free/mprotect natives the tracer hooks.
#[test]
fn tracing_is_invisible_on_webserver() {
    let module = r2c_workloads::webserver_module(ServerKind::Nginx, 100);
    let image = R2cCompiler::new(R2cConfig::full(3)).build(&module).unwrap();
    let vm = run_traced_checked(&image, MachineKind::I9_9900K);
    let p = vm.trace_profile().unwrap();
    assert!(p.heap.allocs > 0, "ctor allocations must be observed");
    assert!(p.heap.frees > 0, "ctor frees must be observed");
}

/// Attribution completeness: every cycle and instruction lands in
/// exactly one per-function row, and the folded stacks account for the
/// same cycle total.
#[test]
fn attribution_is_complete() {
    let w = &spec_workloads(Scale::Test)[3]; // lbm
    let image = R2cCompiler::new(R2cConfig::full(11))
        .build(&w.module)
        .unwrap();
    let vm = run_traced_checked(&image, MachineKind::EpycRome);
    let p = vm.trace_profile().unwrap();
    let cycle_sum: u64 = p.funcs.iter().map(|f| f.self_cycles).sum();
    let insn_sum: u64 = p.funcs.iter().map(|f| f.instructions).sum();
    assert_eq!(cycle_sum, p.totals.cycles, "self cycles must sum to total");
    assert_eq!(insn_sum, p.totals.instructions);
    let folded_sum: u64 = p.folded.iter().map(|(_, c)| c).sum();
    assert_eq!(
        folded_sum, p.totals.cycles,
        "folded stacks must cover all cycles"
    );
    assert!(!p.folded_stacks().is_empty());
    // Function rows are sorted for the report: hottest first.
    for w in p.funcs.windows(2) {
        assert!(w[0].self_cycles >= w[1].self_cycles);
    }
}

/// The golden check behind the re-derived memory numbers (§6.2.5,
/// EXPERIMENTS.md): after a full-R²C web-server run, the freed BTDP
/// pool pages must no longer be resident — end-of-run heap residency is
/// kept guards + quarantine + live data, strictly below the pool size —
/// while the kept guard pages are still mapped with no permissions.
#[test]
fn freed_btdp_pool_pages_are_not_resident_after_run() {
    let module = r2c_workloads::webserver_module(ServerKind::Nginx, 100);
    let cfg = R2cConfig::full(1);
    let btdp = cfg.diversify.btdp.unwrap();
    let (image, info) = R2cCompiler::new(cfg).build_with_info(&module).unwrap();
    let mut vm = Vm::new(&image, VmConfig::new(MachineKind::I9_9900K.config()));
    let out = vm.run();
    assert!(matches!(out.status, ExitStatus::Exited(_)));

    let heap_pages = vm
        .mem
        .mapped_pages_in(image.layout.heap_base, image.layout.heap_size);
    let guard_pages = heap_pages
        .iter()
        .filter(|&&(_, p)| p == Perms::NONE)
        .count();
    // All kept chunks (and the quarantine tail) are guard pages...
    assert!(
        guard_pages >= btdp.kept_pages as usize,
        "kept BTDP chunks must stay mapped as guards: {guard_pages} < {}",
        btdp.kept_pages
    );
    // ...but the freed pool pages have been released: total heap
    // residency stays below the pool the constructor cycled through.
    let live_pages = vm
        .heap
        .live_allocations()
        .map(|(a, s)| ((a + s).div_ceil(PAGE_SIZE) - a / PAGE_SIZE) as usize)
        .sum::<usize>();
    assert!(
        heap_pages.len() <= live_pages + r2c_vm::heap::DEFAULT_QUARANTINE_PAGES,
        "resident heap pages {} exceed live {} + quarantine — freed pool \
         pages leaked back into the resident set",
        heap_pages.len(),
        live_pages
    );
    assert!(
        heap_pages.len() < btdp.pool_pages as usize + live_pages - btdp.kept_pages as usize,
        "freed pool pages still resident"
    );
    let _ = info;
    vm.heap.check_invariants(&vm.mem).unwrap();
}
