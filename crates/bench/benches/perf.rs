//! Criterion benchmarks mirroring the paper's evaluation structure.
//!
//! One group per table/figure. These run the same code paths as the
//! `report_*` binaries at reduced scale, so `cargo bench` both
//! exercises the whole pipeline and provides host-side regression
//! tracking. The actual paper tables (which are about *simulated*
//! cycles, not host time) are produced by the report binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use r2c_core::{Component, R2cCompiler, R2cConfig};
use r2c_vm::{MachineKind, Vm, VmConfig};
use r2c_workloads::{spec_workloads, webserver_module, Scale, ServerKind};

fn run_image(image: &r2c_vm::Image, machine: MachineKind) -> f64 {
    let mut vm = Vm::new(image, VmConfig::new(machine.config()));
    let out = vm.run();
    assert!(out.status.is_exit());
    out.stats.cycles_f64()
}

/// Table 1: executing representative workloads under each isolated
/// component configuration.
fn bench_table1_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_components");
    g.sample_size(10);
    let workloads = spec_workloads(Scale::Test);
    let subset = ["omnetpp", "xalancbmk", "lbm"];
    for w in workloads.iter().filter(|w| subset.contains(&w.name)) {
        let configs: Vec<(&str, R2cConfig)> = vec![
            ("baseline", R2cConfig::baseline(1)),
            ("push", R2cConfig::component(Component::Push, 1)),
            ("avx", R2cConfig::component(Component::Avx, 1)),
            ("btdp", R2cConfig::component(Component::Btdp, 1)),
        ];
        for (cname, cfg) in configs {
            let image = R2cCompiler::new(cfg).build(&w.module).unwrap();
            g.bench_with_input(BenchmarkId::new(w.name, cname), &image, |b, image| {
                b.iter(|| run_image(image, MachineKind::EpycRome))
            });
        }
    }
    g.finish();
}

/// Figure 6: full R²C on every workload (EPYC Rome model).
fn bench_fig6_full(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_full_r2c");
    g.sample_size(10);
    for w in spec_workloads(Scale::Test) {
        let base = R2cCompiler::new(R2cConfig::baseline(1))
            .build(&w.module)
            .unwrap();
        let full = R2cCompiler::new(R2cConfig::full(1))
            .build(&w.module)
            .unwrap();
        g.bench_with_input(BenchmarkId::new(w.name, "baseline"), &base, |b, img| {
            b.iter(|| run_image(img, MachineKind::EpycRome))
        });
        g.bench_with_input(BenchmarkId::new(w.name, "full_r2c"), &full, |b, img| {
            b.iter(|| run_image(img, MachineKind::EpycRome))
        });
    }
    g.finish();
}

/// §6.2.4: web-server request processing.
fn bench_webserver(c: &mut Criterion) {
    let mut g = c.benchmark_group("webserver");
    g.sample_size(10);
    for kind in [ServerKind::Nginx, ServerKind::Apache] {
        let module = webserver_module(kind, 200);
        for (cname, cfg) in [
            ("baseline", R2cConfig::baseline(1)),
            ("full_r2c", R2cConfig::full(1)),
        ] {
            let image = R2cCompiler::new(cfg).build(&module).unwrap();
            g.bench_with_input(BenchmarkId::new(kind.name(), cname), &image, |b, image| {
                b.iter(|| run_image(image, MachineKind::I9_9900K))
            });
        }
    }
    g.finish();
}

/// §6.3: compiler throughput with full diversification.
fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_scalability");
    g.sample_size(10);
    for w in spec_workloads(Scale::Test)
        .into_iter()
        .filter(|w| w.name == "xalancbmk")
    {
        g.bench_function("full_r2c_compile_xalancbmk", |b| {
            b.iter(|| {
                R2cCompiler::new(R2cConfig::full(1))
                    .build(&w.module)
                    .unwrap()
            })
        });
    }
    g.finish();
}

/// §7.2: one AOCR attempt against a diversified victim (dominated by
/// victim build + run; tracks the security-evaluation pipeline).
fn bench_attack(c: &mut Criterion) {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut g = c.benchmark_group("security_eval");
    g.sample_size(10);
    let cfg = R2cConfig::full(0);
    let k = r2c_attacks::AttackerKnowledge::profile(&cfg, 1);
    g.bench_function("aocr_vs_full_r2c", |b| {
        let mut seed = 0u64;
        let mut rng = SmallRng::seed_from_u64(9);
        b.iter(|| {
            seed += 1;
            let v = r2c_attacks::victim::build_victim(cfg.with_seed(seed));
            let mut vm = r2c_attacks::victim::run_victim(&v.image);
            r2c_attacks::aocr::aocr_attack(&mut vm, &v.image, &k, &mut rng)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1_components,
    bench_fig6_full,
    bench_webserver,
    bench_compile,
    bench_attack
);
criterion_main!(benches);
