//! Sweeps the `r2c-check` static analyzer over every workload ×
//! configuration cell: each SPEC-profile module and both webserver
//! models, compiled under every preset and Table 1 component config
//! with a handful of seeds, must produce a pre-link program and a
//! linked image with **zero** findings.
//!
//! This is the release-mode counterpart of the debug-build default
//! (`R2cConfig::check` is on in debug builds): CI runs this binary so
//! the checker also validates the exact artifacts the performance
//! reports measure. Exits non-zero on any finding.
//!
//! With `--decode`, the sweep instead runs the decode translation
//! validator ([`r2c_check::check_decode`]) over every linked image:
//! each cell symbolically proves the pre-decoded execution-engine
//! program equivalent to the image's reference semantics under **all
//! four machine models, fusion on and off** (the release-mode
//! counterpart of `R2cConfig::check_decode`).

use std::process::ExitCode;

use r2c_bench::{parallel_map, TablePrinter};
use r2c_check::{check_decode, check_image, check_program};
use r2c_codegen::{link, LinkOptions};
use r2c_core::{Component, DiversifyConfig, R2cCompiler, R2cConfig};
use r2c_ir::Module;
use r2c_workloads::{spec_workloads, webserver_module, Scale, ServerKind};

fn configs(seed: u64) -> Vec<(String, R2cConfig)> {
    let mut out = vec![
        ("baseline".to_string(), R2cConfig::baseline(seed)),
        ("full".to_string(), R2cConfig::full(seed)),
        ("full-push".to_string(), R2cConfig::full_push(seed)),
        (
            "hardened".to_string(),
            R2cConfig {
                diversify: DiversifyConfig::hardened(2),
                seed,
                check: false,
                check_decode: false,
            },
        ),
    ];
    for c in Component::TABLE1.into_iter().chain([Component::Oia]) {
        out.push((format!("comp-{}", c.name()), R2cConfig::component(c, seed)));
    }
    out
}

/// Checks one (module, config) cell; returns the findings rendered as
/// strings (empty = clean). In decode mode the cell runs the decode
/// translation validator over the linked image (all machines, fusion
/// on and off) instead of the program/image structural passes.
fn check_cell(module: &Module, cfg: R2cConfig, decode: bool) -> Vec<String> {
    let compiler = R2cCompiler::new(cfg.with_check(false));
    let (program, opts, _) = match compiler.compile_program(module) {
        Ok(r) => r,
        Err(e) => return vec![format!("compile error: {e}")],
    };
    let image = link(
        &program,
        &LinkOptions::from_config(&opts.diversify, opts.seed),
    );
    if decode {
        return check_decode(&image)
            .into_iter()
            .map(|e| format!("decode: {e}"))
            .collect();
    }
    let mut findings: Vec<String> = check_program(&program, &opts.diversify)
        .into_iter()
        .map(|e| format!("program: {e}"))
        .collect();
    findings.extend(
        check_image(&image, &opts.diversify)
            .into_iter()
            .map(|e| format!("image: {e}")),
    );
    findings
}

fn main() -> ExitCode {
    let decode = std::env::args().any(|a| a == "--decode");
    let seeds: &[u64] = if std::env::args().any(|a| a == "--large") {
        &[0, 1, 2, 3, 4, 5, 6, 7]
    } else {
        &[0, 1, 2]
    };

    let mut modules: Vec<(String, Module)> = spec_workloads(Scale::Test)
        .into_iter()
        .map(|w| (w.name.to_string(), w.module))
        .collect();
    for kind in [ServerKind::Nginx, ServerKind::Apache] {
        modules.push((kind.name().to_string(), webserver_module(kind, 16)));
    }

    let cfg_names: Vec<String> = configs(0).iter().map(|(n, _)| n.clone()).collect();
    println!(
        "{}: {} workloads x {} configs x {} seeds\n",
        if decode {
            "Decode translation-validation sweep (all machines, fusion on/off)"
        } else {
            "Static checker sweep"
        },
        modules.len(),
        cfg_names.len(),
        seeds.len()
    );

    // One cell per (workload, config); each cell sweeps all seeds.
    let cells: Vec<(usize, usize)> = (0..modules.len())
        .flat_map(|wi| (0..cfg_names.len()).map(move |ci| (wi, ci)))
        .collect();
    let results = parallel_map(&cells, |&(wi, ci)| {
        let mut findings = Vec::new();
        for &seed in seeds {
            let (name, cfg) = configs(seed).swap_remove(ci);
            debug_assert_eq!(name, cfg_names[ci]);
            for f in check_cell(&modules[wi].1, cfg, decode) {
                findings.push(format!("seed {seed}: {f}"));
            }
        }
        findings
    });

    let t = TablePrinter::new(&[12, 11, 9]);
    t.row(&["workload".into(), "config".into(), "findings".into()]);
    t.sep();
    let mut total = 0usize;
    for (&(wi, ci), findings) in cells.iter().zip(&results) {
        total += findings.len();
        t.row(&[
            modules[wi].0.clone(),
            cfg_names[ci].clone(),
            if findings.is_empty() {
                "clean".into()
            } else {
                format!("{} !!", findings.len())
            },
        ]);
    }

    if total > 0 {
        println!("\n{total} findings:");
        for (&(wi, ci), findings) in cells.iter().zip(&results) {
            for f in findings {
                println!("  {} / {}: {f}", modules[wi].0, cfg_names[ci]);
            }
        }
        return ExitCode::FAILURE;
    }
    println!("\nall cells clean");
    ExitCode::SUCCESS
}
