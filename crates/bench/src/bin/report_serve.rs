//! Regenerates the **§7.3 reactive-serving evaluation**: a deterministic
//! server fleet (r2c-serve) probed by a Blind-ROP attacker, compared
//! across reaction policies, plus the host-side cost of load-time
//! re-randomization with and without the warm variant pool.
//!
//! ```text
//! cargo run --release -p r2c-bench --bin report_serve -- \
//!     [--smoke] [--verify-determinism]
//! ```
//!
//! * `--smoke` — CI sizes (shorter schedules, same structure).
//! * `--verify-determinism` — additionally re-run every fleet scenario
//!   serially and fail unless the monitor log and metrics are
//!   bit-identical to the parallel run.
//!
//! Writes `BENCH_serve.json`: a `deterministic` section (availability,
//! throughput, probes-to-compromise — pure functions of the seeds) and
//! a `host` section (respawn-latency distributions, which depend on the
//! machine running the report).
//!
//! Exits non-zero if a §7.3 invariant fails: `RespawnFreshVariant` must
//! strictly outlast `RestartSameImage` under probe load, and a warm
//! respawn must be cheaper than a cold compile.

use std::process::ExitCode;
use std::time::Duration;

use r2c_attacks::victim::victim_module;
use r2c_bench::TablePrinter;
use r2c_core::{R2cConfig, TakeKind};
use r2c_serve::{run_fleet, ExecMode, FleetConfig, FleetRun, ReactionPolicy, Schedule};
use r2c_workloads::{webserver_module, ServerKind};

const POLICIES: [ReactionPolicy; 3] = [
    ReactionPolicy::Ignore,
    ReactionPolicy::RestartSameImage,
    ReactionPolicy::RespawnFreshVariant,
];

struct Sizes {
    /// Events in the mixed request/probe serving schedule.
    serve_events: usize,
    /// Events in the pure-probe compromise schedule.
    probe_events: usize,
    /// Events in the webserver-fleet schedule.
    web_events: usize,
}

struct Args {
    smoke: bool,
    verify: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        verify: false,
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--verify-determinism" => args.verify = true,
            other => panic!("unknown argument {other:?} (try --smoke/--verify-determinism)"),
        }
    }
    args
}

/// Runs a scenario in parallel mode; with `verify`, re-runs serially
/// and records any log/metric divergence in `errors`.
fn run_verified(
    module: &r2c_ir::Module,
    fc: &FleetConfig,
    sched: &Schedule,
    verify: bool,
    label: &str,
    errors: &mut Vec<String>,
) -> FleetRun {
    let parallel = run_fleet(module, fc, sched, ExecMode::Parallel);
    if verify {
        let serial = run_fleet(module, fc, sched, ExecMode::Serial);
        if serial.log != parallel.log {
            errors.push(format!("{label}: parallel log diverged from serial"));
        }
        if serial.metrics != parallel.metrics {
            errors.push(format!("{label}: parallel metrics diverged from serial"));
        }
    }
    parallel
}

struct LatencyStats {
    n: usize,
    mean_us: f64,
    min_us: f64,
    max_us: f64,
}

fn latency_stats(xs: &[Duration]) -> LatencyStats {
    if xs.is_empty() {
        return LatencyStats {
            n: 0,
            mean_us: 0.0,
            min_us: 0.0,
            max_us: 0.0,
        };
    }
    let us: Vec<f64> = xs.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    LatencyStats {
        n: us.len(),
        mean_us: us.iter().sum::<f64>() / us.len() as f64,
        min_us: us.iter().cloned().fold(f64::INFINITY, f64::min),
        max_us: us.iter().cloned().fold(0.0, f64::max),
    }
}

fn fmt_policy_metrics(run: &FleetRun) -> Vec<String> {
    let m = &run.metrics;
    vec![
        format!("{:.3}", m.availability()),
        format!("{}/{}", m.served, m.requests),
        format!("{:.0}", m.cycles_per_request()),
        m.detections.to_string(),
        (m.restarts + m.respawns).to_string(),
        m.compromises.to_string(),
    ]
}

fn main() -> ExitCode {
    let args = parse_args();
    let sizes = if args.smoke {
        Sizes {
            serve_events: 160,
            probe_events: 400,
            web_events: 60,
        }
    } else {
        Sizes {
            serve_events: 800,
            probe_events: 1200,
            web_events: 200,
        }
    };
    let mut errors: Vec<String> = Vec::new();
    let victim = victim_module();
    let build = R2cConfig::full(0);

    // -- 1. Serving under probe load (mixed schedule, per policy) -----
    println!("== Fleet serving under attack-probe load (15% probes) ==\n");
    let sched_noisy = Schedule::generate(0x5EED, 4, sizes.serve_events, 150);
    let sched_quiet = sched_noisy.requests_only();
    let quiet = run_verified(
        &victim,
        &FleetConfig {
            fleet_seed: 42,
            ..FleetConfig::new(build, ReactionPolicy::RespawnFreshVariant)
        },
        &sched_quiet,
        args.verify,
        "serve/quiet",
        &mut errors,
    );
    let quiet_cpr = quiet.metrics.cycles_per_request();

    let t = TablePrinter::new(&[14, 8, 10, 10, 6, 9, 6]);
    t.row(&[
        "policy".into(),
        "avail".into(),
        "served".into(),
        "cyc/req".into(),
        "det".into(),
        "react".into(),
        "comp".into(),
    ]);
    t.sep();
    let mut serving_rows: Vec<(String, FleetRun)> = Vec::new();
    for policy in POLICIES {
        let fc = FleetConfig {
            fleet_seed: 42,
            ..FleetConfig::new(build, policy)
        };
        let run = run_verified(
            &victim,
            &fc,
            &sched_noisy,
            args.verify,
            &format!("serve/{}", policy.name()),
            &mut errors,
        );
        let mut cells = vec![policy.name().to_string()];
        cells.extend(fmt_policy_metrics(&run));
        t.row(&cells);
        serving_rows.push((policy.name().to_string(), run));
    }
    println!(
        "\nprobe-free baseline: availability 1.000, {quiet_cpr:.0} cycles/request \
         (degradation = cyc/req above / {quiet_cpr:.0})"
    );

    // -- 2. Probes to compromise (pure probe load, per policy) --------
    println!("\n== Blind-ROP probes to compromise (paper §7.3) ==\n");
    let sched_probe = Schedule::generate(1, 2, sizes.probe_events, 1000);
    let t = TablePrinter::new(&[14, 16, 8, 8, 10]);
    t.row(&[
        "policy".into(),
        "compromised at".into(),
        "det".into(),
        "react".into(),
        "crashes".into(),
    ]);
    t.sep();
    let mut p2c: Vec<(String, Option<u64>, FleetRun)> = Vec::new();
    for policy in POLICIES {
        let fc = FleetConfig::new(build, policy);
        let run = run_verified(
            &victim,
            &fc,
            &sched_probe,
            args.verify,
            &format!("probe/{}", policy.name()),
            &mut errors,
        );
        let m = &run.metrics;
        t.row(&[
            policy.name().into(),
            m.first_compromise_probe
                .map(|k| format!("probe {k}"))
                .unwrap_or_else(|| format!("never (of {})", m.probes)),
            m.detections.to_string(),
            (m.restarts + m.respawns).to_string(),
            m.probe_crashes.to_string(),
        ]);
        p2c.push((policy.name().to_string(), m.first_compromise_probe, run));
    }
    let same_k = p2c
        .iter()
        .find(|(n, _, _)| n == "restart-same")
        .and_then(|(_, k, _)| *k);
    let fresh_k = p2c
        .iter()
        .find(|(n, _, _)| n == "respawn-fresh")
        .and_then(|(_, k, _)| *k);
    match (same_k, fresh_k) {
        (Some(k), None) => println!(
            "\nrestart-same compromised at probe {k}; respawn-fresh never (>= {} probes)",
            sizes.probe_events
        ),
        (Some(k), Some(kf)) if kf > k => {
            println!("\nrestart-same compromised at probe {k}; respawn-fresh held until {kf}")
        }
        (same, fresh) => errors.push(format!(
            "§7.3 violated: restart-same compromised at {same:?}, respawn-fresh at {fresh:?} \
             (fresh must strictly outlast same-image)"
        )),
    }

    // -- 3. Webserver fleet (realistic workload, throughput focus) ----
    println!("\n== Webserver fleet (nginx-like workload, 10% probes) ==\n");
    let ws = webserver_module(ServerKind::Nginx, 4);
    let ws_fc = FleetConfig {
        fleet_seed: 7,
        ..FleetConfig::new(build, ReactionPolicy::RespawnFreshVariant).entry_service()
    };
    let ws_noisy = Schedule::generate(0xEB, 2, sizes.web_events, 100);
    let ws_quiet = ws_noisy.requests_only();
    let wq = run_verified(
        &ws,
        &ws_fc,
        &ws_quiet,
        args.verify,
        "web/quiet",
        &mut errors,
    );
    let wn = run_verified(
        &ws,
        &ws_fc,
        &ws_noisy,
        args.verify,
        "web/noisy",
        &mut errors,
    );
    println!(
        "quiet: {:.3} availability, {:.0} cycles/request",
        wq.metrics.availability(),
        wq.metrics.cycles_per_request()
    );
    println!(
        "noisy: {:.3} availability, {:.0} cycles/request, {} respawns",
        wn.metrics.availability(),
        wn.metrics.cycles_per_request(),
        wn.metrics.respawns
    );

    // -- 4. Respawn latency: warm pool vs cold compile ----------------
    println!("\n== Respawn latency: warm variant pool vs cold compile ==\n");
    let fresh_run = &p2c
        .iter()
        .find(|(n, _, _)| n == "respawn-fresh")
        .expect("respawn-fresh row")
        .2;
    let warm: Vec<Duration> = fresh_run
        .respawn_latencies
        .iter()
        .filter(|l| l.kind == TakeKind::Warm)
        .map(|l| l.latency)
        .collect();
    let cold_fc = FleetConfig {
        pool_threads: 0,
        ..FleetConfig::new(build, ReactionPolicy::RespawnFreshVariant)
    };
    let cold_run = run_verified(
        &victim,
        &cold_fc,
        &sched_probe,
        args.verify,
        "probe/respawn-cold",
        &mut errors,
    );
    let cold: Vec<Duration> = cold_run
        .respawn_latencies
        .iter()
        .filter(|l| l.kind == TakeKind::Cold)
        .map(|l| l.latency)
        .collect();
    let ws_stats = latency_stats(&warm);
    let cs_stats = latency_stats(&cold);
    let boot_stats = latency_stats(&cold_run.boot_compiles);
    println!(
        "warm takes: n={} mean {:.1} us (min {:.1}, max {:.1})",
        ws_stats.n, ws_stats.mean_us, ws_stats.min_us, ws_stats.max_us
    );
    println!(
        "cold compiles: n={} mean {:.1} us (min {:.1}, max {:.1})",
        cs_stats.n, cs_stats.mean_us, cs_stats.min_us, cs_stats.max_us
    );
    println!(
        "gen-0 boot compiles: n={} mean {:.1} us",
        boot_stats.n, boot_stats.mean_us
    );
    if ws_stats.n == 0 || cs_stats.n == 0 {
        errors.push(format!(
            "latency sample missing: {} warm takes, {} cold compiles",
            ws_stats.n, cs_stats.n
        ));
    } else if ws_stats.mean_us >= cs_stats.mean_us {
        errors.push(format!(
            "warm respawn ({:.1} us mean) not cheaper than cold compile ({:.1} us mean)",
            ws_stats.mean_us, cs_stats.mean_us
        ));
    } else {
        println!(
            "warm pool speedup: {:.1}x",
            cs_stats.mean_us / ws_stats.mean_us
        );
    }
    let guest_equal = fresh_run.metrics == cold_run.metrics && fresh_run.log == cold_run.log;
    if !guest_equal {
        errors.push("pooled and unpooled runs disagree on guest state".into());
    }

    // -- BENCH_serve.json ---------------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"smoke\": {}, \"verified_determinism\": {},\n",
        args.smoke, args.verify
    ));
    json.push_str("  \"deterministic\": {\n");
    json.push_str("    \"serving\": [\n");
    for (i, (name, run)) in serving_rows.iter().enumerate() {
        let m = &run.metrics;
        json.push_str(&format!(
            "      {{\"policy\": \"{name}\", \"availability\": {:.4}, \"served\": {}, \
             \"requests\": {}, \"dropped\": {}, \"cycles_per_request\": {:.1}, \
             \"throughput_degradation\": {:.4}, \"detections\": {}, \"reactions\": {}, \
             \"compromises\": {}}}{}\n",
            m.availability(),
            m.served,
            m.requests,
            m.dropped,
            m.cycles_per_request(),
            if quiet_cpr > 0.0 {
                m.cycles_per_request() / quiet_cpr
            } else {
                1.0
            },
            m.detections,
            m.restarts + m.respawns,
            m.compromises,
            if i + 1 == serving_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("    ],\n");
    json.push_str("    \"probes_to_compromise\": [\n");
    for (i, (name, k, run)) in p2c.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"policy\": \"{name}\", \"first_compromise_probe\": {}, \"probes\": {}, \
             \"detections\": {}, \"reactions\": {}}}{}\n",
            k.map(|k| k.to_string()).unwrap_or_else(|| "null".into()),
            run.metrics.probes,
            run.metrics.detections,
            run.metrics.restarts + run.metrics.respawns,
            if i + 1 == p2c.len() { "" } else { "," }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"webserver\": {{\"quiet_availability\": {:.4}, \"noisy_availability\": {:.4}, \
         \"quiet_cycles_per_request\": {:.1}, \"noisy_cycles_per_request\": {:.1}, \
         \"respawns\": {}}}\n",
        wq.metrics.availability(),
        wn.metrics.availability(),
        wq.metrics.cycles_per_request(),
        wn.metrics.cycles_per_request(),
        wn.metrics.respawns
    ));
    json.push_str("  },\n");
    json.push_str("  \"host\": {\n");
    json.push_str(&format!(
        "    \"warm_take\": {{\"n\": {}, \"mean_us\": {:.2}, \"min_us\": {:.2}, \"max_us\": {:.2}}},\n",
        ws_stats.n, ws_stats.mean_us, ws_stats.min_us, ws_stats.max_us
    ));
    json.push_str(&format!(
        "    \"cold_compile\": {{\"n\": {}, \"mean_us\": {:.2}, \"min_us\": {:.2}, \"max_us\": {:.2}}},\n",
        cs_stats.n, cs_stats.mean_us, cs_stats.min_us, cs_stats.max_us
    ));
    json.push_str(&format!(
        "    \"boot_compile\": {{\"n\": {}, \"mean_us\": {:.2}}},\n",
        boot_stats.n, boot_stats.mean_us
    ));
    json.push_str(&format!(
        "    \"warm_speedup\": {:.3}\n",
        if ws_stats.mean_us > 0.0 {
            cs_stats.mean_us / ws_stats.mean_us
        } else {
            0.0
        }
    ));
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");

    if errors.is_empty() {
        println!("ok: all §7.3 invariants hold");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("FAIL: {e}");
        }
        ExitCode::FAILURE
    }
}
