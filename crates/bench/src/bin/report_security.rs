//! Regenerates the **§7.2 security evaluation**: the attack matrix
//! (which attacks succeed against the unprotected victim and against
//! full R²C), Monte-Carlo measurements of the probabilistic guarantees,
//! and the closed-form predictions they must match:
//!
//! * P(guess the return address among R BTRAs) = 1/(R+1)   (§7.2.1)
//! * P(locate an n-address ROP chain) = (1/(R+1))^n        (§7.2.1)
//! * P(pick a benign heap pointer) = H/(H+B)               (§7.2.3)
//! * Blind-ROP probes until detection                       (§4.1/§7.3)

use rand::rngs::SmallRng;
use rand::SeedableRng;

use r2c_attacks::aocr;
use r2c_attacks::knowledge::probe_words;
use r2c_attacks::matrix::{blind_rop_stats, matrix_cell, matrix_cells, MATRIX_ATTACKS};
use r2c_attacks::victim::{build_victim, run_victim};
use r2c_bench::{parallel_map, TablePrinter};
use r2c_core::analysis::{p_guess_return_address, p_locate_chain, p_pick_benign_heap_pointer};
use r2c_core::R2cConfig;

fn main() {
    let trials: u64 = if std::env::args().any(|a| a == "--large") {
        120
    } else {
        40
    };

    println!("== Attack matrix (paper §7.2 / Table 3 security columns) ==\n");
    let t = TablePrinter::new(&[18, 26, 26]);
    t.row(&["attack".into(), "unprotected".into(), "full R2C".into()]);
    t.sep();

    let full_cfg = R2cConfig::full(0);

    // The matrix itself lives in r2c-attacks (`matrix` module), shared
    // with the golden security-regression suite; cells are independent
    // (per-cell RNG), so they fan out across threads and the rows print
    // in canonical order afterwards.
    let cells = matrix_cells();
    let tallies = parallel_map(&cells, |&(attack, protected)| {
        matrix_cell(attack, protected, trials).tally.to_string()
    });
    for (a, name) in MATRIX_ATTACKS.iter().enumerate() {
        t.row(&[
            (*name).into(),
            tallies[2 * a].clone(),
            tallies[2 * a + 1].clone(),
        ]);
    }

    // Blind ROP: separate, because it consumes many worker restarts.
    {
        let n = (trials / 8).max(3);
        let protections = [false, true];
        let results = parallel_map(&protections, |&protected| {
            let s = blind_rop_stats(protected, n, 4000);
            match s.avg_probes_to_detect() {
                Some(avg) => format!(
                    "success {}/{n}, detected {} (avg {avg:.0} probes)",
                    s.successes, s.detected
                ),
                None => format!("success {}/{n}, detected 0", s.successes),
            }
        });
        let mut cells = vec!["Blind ROP".to_string()];
        cells.extend(results);
        t.row(&cells);
    }

    // BTRA probability check (§7.2.1).
    println!("\n== BTRA guessing probability (paper §7.2.1) ==\n");
    println!(
        "closed form: P(guess RA | R=10) = 1/11 = {:.4}",
        p_guess_return_address(10)
    );
    println!(
        "closed form: P(4-chain | R=10) = (1/11)^4 = {:.6} (paper: ~0.00007)",
        p_locate_chain(10, 4)
    );
    // Empirical: count indistinguishable return-address candidates in
    // the leaked window of full-R²C variants.
    let cand_seeds: Vec<u64> = (0..trials.min(24)).collect();
    let candidate_counts = parallel_map(&cand_seeds, |&seed| {
        let v = build_victim(full_cfg.with_seed(seed));
        let vm = run_victim(&v.image);
        let (_rsp, words) = probe_words(&vm);
        words
            .iter()
            .filter(|&&w| v.image.layout.region_of(w) == Some(r2c_vm::image::Region::Text))
            .count()
    });
    let avg = candidate_counts.iter().sum::<usize>() as f64 / candidate_counts.len() as f64;
    println!("measured: avg {avg:.1} indistinguishable code-pointer candidates per leaked window");
    println!("          => empirical P(guess) ~ {:.4}", 1.0 / avg);

    // BTDP dilution (§7.2.3). H counts every benign heap-pointer
    // *occurrence* in the leaked window (spills and staging copies
    // included — the paper's H likewise depends on spilled registers),
    // B every guard-page-pointing occurrence; ground truth comes from
    // page permissions.
    println!("\n== BTDP dilution of the heap-pointer cluster (paper §7.2.3) ==\n");
    let mut rng = SmallRng::seed_from_u64(0xB7D);
    let mut detected = 0u32;
    let mut total = 0u32;
    let mut h_sum = 0f64;
    let mut b_sum = 0f64;
    for seed in 0..trials {
        let v = build_victim(full_cfg.with_seed(seed));
        let mut vm = run_victim(&v.image);
        // Ground-truth split of the heap cluster.
        let (rsp, words) = probe_words(&vm);
        let clusters = r2c_core::analysis::cluster_values(&words, 1 << 32);
        if let Some(hc) = clusters.iter().find(|c| {
            c.min >= (1u64 << 32) && c.members.iter().all(|&m| m.abs_diff(rsp) > (1 << 24))
        }) {
            for &m in &hc.members {
                if vm.perms_at(m) == Some(r2c_vm::Perms::NONE) {
                    b_sum += 1.0;
                } else {
                    h_sum += 1.0;
                }
            }
        }
        let (out, _) = aocr::harvest_heap_pointer(&mut vm, &mut rng);
        total += 1;
        if out.is_detected() {
            detected += 1;
        }
    }
    let h = h_sum / total as f64;
    let b = b_sum / total as f64;
    println!(
        "avg heap-pointer cluster: {:.1} members (H = {h:.1} benign, B = {b:.1} BTDP)",
        h + b
    );
    println!(
        "closed form: P(benign pick) = H/(H+B) = {:.2}",
        p_pick_benign_heap_pointer(h.round() as u64, b.round() as u64)
    );
    println!(
        "measured:    P(benign pick) = {:.2}  (detected {detected}/{total})",
        1.0 - detected as f64 / total as f64
    );

    // §7.3: remaining attack surface and the paper's proposed
    // mitigations, both implemented here.
    println!("\n== Remaining attack surface & mitigations (paper §7.3) ==\n");
    let module = r2c_attacks::victim::victim_module();
    // (a) RA-zeroing side channel vs BTRA consistency checking.
    let n = (trials / 8).max(4);
    let zero_seeds: Vec<u64> = (0..n).collect();
    let zeroing = parallel_map(&zero_seeds, |&seed| {
        let img = r2c_core::R2cCompiler::new(full_cfg.with_seed(seed))
            .build(&module)
            .unwrap();
        let plain = matches!(
            r2c_attacks::zeroing::zeroing_attack(&img),
            r2c_attacks::zeroing::ZeroingResult::FoundRa { .. }
        );
        let hardened = R2cConfig {
            diversify: r2c_core::DiversifyConfig::hardened(3),
            seed,
            check: cfg!(debug_assertions),
            check_decode: cfg!(debug_assertions),
        };
        let img = r2c_core::R2cCompiler::new(hardened).build(&module).unwrap();
        let hard = matches!(
            r2c_attacks::zeroing::zeroing_attack(&img),
            r2c_attacks::zeroing::ZeroingResult::Detected { .. }
        );
        (plain, hard)
    });
    let plain_found = zeroing.iter().filter(|&&(p, _)| p).count();
    let hard_detected = zeroing.iter().filter(|&&(_, h)| h).count();
    println!("RA-zeroing side channel: locates the RA in {plain_found}/{n} campaigns");
    println!("with BTRA consistency checks (3/site): detected in {hard_detected}/{n} campaigns");
    // (b) Blind ROP vs load-time re-randomization.
    let r = r2c_attacks::zeroing::blind_rop_rerandomizing(&module, full_cfg, 150);
    println!(
        "Blind ROP vs re-randomizing workers: {:?} after {} probes (never Success)",
        r.outcome, r.probes
    );
}
