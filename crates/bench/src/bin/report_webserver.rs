//! Regenerates the **§6.2.4 web-server measurement**: throughput of
//! nginx- and Apache-like servers with full R²C versus baseline, on
//! the Intel i9-9900K and the AMD machines.
//!
//! Paper: i9-9900K throughput decrease 13% (nginx) and 12% (Apache);
//! 3–4% on the AMD machines for both.

use r2c_bench::{parallel_map, TablePrinter};
use r2c_core::R2cConfig;
use r2c_vm::MachineKind;
use r2c_workloads::{webserver::run_webserver, ServerKind};

fn main() {
    let requests: u64 = if std::env::args().any(|a| a == "--large") {
        20_000
    } else {
        4_000
    };
    println!("Webserver throughput under full R2C (paper §6.2.4), {requests} requests/run\n");
    let t = TablePrinter::new(&[8, 11, 14, 14, 10, 16]);
    t.row(&[
        "server".into(),
        "machine".into(),
        "baseline rps".into(),
        "R2C rps".into(),
        "drop".into(),
        "paper".into(),
    ]);
    t.sep();
    let cells: Vec<(ServerKind, MachineKind)> = [ServerKind::Nginx, ServerKind::Apache]
        .into_iter()
        .flat_map(|kind| {
            [
                MachineKind::I9_9900K,
                MachineKind::EpycRome,
                MachineKind::Tr3970X,
            ]
            .into_iter()
            .map(move |machine| (kind, machine))
        })
        .collect();
    let results = parallel_map(&cells, |&(kind, machine)| {
        let base = run_webserver(kind, requests, R2cConfig::baseline(1), machine);
        let prot = run_webserver(kind, requests, R2cConfig::full(1), machine);
        (base, prot)
    });
    {
        for (&(kind, machine), (base, prot)) in cells.iter().zip(&results) {
            let drop = 1.0 - prot.throughput_rps / base.throughput_rps;
            let paper = match (kind, machine) {
                (ServerKind::Nginx, MachineKind::I9_9900K) => "-13%",
                (ServerKind::Apache, MachineKind::I9_9900K) => "-12%",
                _ => "-3..4% (AMD)",
            };
            t.row(&[
                kind.name().into(),
                machine.name().into(),
                format!("{:.3e}", base.throughput_rps),
                format!("{:.3e}", prot.throughput_rps),
                format!("-{:.1}%", 100.0 * drop),
                paper.into(),
            ]);
        }
    }
}
