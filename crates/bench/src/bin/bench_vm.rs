//! Host-side VM throughput benchmark: how fast the simulator itself
//! runs, independent of the simulated cycle model.
//!
//! Measures guest MIPS (million simulated instructions per host second)
//! and wall-clock over the `Scale::Test` workloads, for baseline and
//! full-R²C builds, and writes the results to `BENCH_vm.json`.
//!
//! Simulated cycle counts are a pure function of the seed; this binary
//! exists to track the *host-side* cost of producing them (page-table
//! lookups, instruction dispatch), which the software TLB and the dense
//! jump table optimize. Pass `--baseline <prior BENCH_vm.json>` to
//! report the speedup against a previously recorded run.

use std::time::Instant;

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::Module;
use r2c_vm::{ExitStatus, MachineKind, Vm, VmConfig};
use r2c_workloads::{spec_workloads, Scale};

/// Repetitions per (workload, config) cell — Scale::Test programs run
/// in milliseconds, so repetition is needed for a stable wall-clock.
const REPS: u32 = 30;

struct Cell {
    name: String,
    insns: u64,
    wall_s: f64,
}

fn run_cell(name: &str, module: &Module, cfg: R2cConfig, machine: MachineKind) -> Cell {
    let image = R2cCompiler::new(cfg).build(module).expect("compile failed");
    let vm_cfg = VmConfig::new(machine.config());
    // Warm-up run, excluded from timing (first touch allocates pages).
    let mut vm = Vm::new(&image, vm_cfg);
    assert!(matches!(vm.run().status, ExitStatus::Exited(_)));
    let mut insns = 0u64;
    let start = Instant::now();
    for _ in 0..REPS {
        let mut vm = Vm::new(&image, vm_cfg);
        let out = vm.run();
        assert!(matches!(out.status, ExitStatus::Exited(_)));
        insns += out.stats.instructions;
    }
    Cell {
        name: name.to_string(),
        insns,
        wall_s: start.elapsed().as_secs_f64(),
    }
}

/// Extracts `"key": <number>` from our own minimal JSON output (no
/// JSON crate in the offline build, and we only ever read files this
/// binary wrote).
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let machine = MachineKind::EpycRome;
    let workloads = spec_workloads(Scale::Test);
    let mut cells = Vec::new();
    for w in &workloads {
        cells.push(run_cell(
            &format!("{}/baseline", w.name),
            &w.module,
            R2cConfig::baseline(1),
            machine,
        ));
        cells.push(run_cell(
            &format!("{}/full", w.name),
            &w.module,
            R2cConfig::full(1),
            machine,
        ));
    }

    let total_insns: u64 = cells.iter().map(|c| c.insns).sum();
    let total_wall: f64 = cells.iter().map(|c| c.wall_s).sum();
    let total_mips = total_insns as f64 / total_wall / 1e6;

    println!(
        "VM host-side throughput ({} reps per cell, {}):",
        REPS,
        machine.name()
    );
    for c in &cells {
        println!(
            "  {:<16} {:>12} insns  {:>8.1} ms  {:>7.2} MIPS",
            c.name,
            c.insns,
            c.wall_s * 1e3,
            c.insns as f64 / c.wall_s / 1e6
        );
    }
    println!(
        "  total: {total_insns} guest insns in {:.1} ms => {total_mips:.2} MIPS",
        total_wall * 1e3
    );

    let speedup = baseline_path.as_ref().and_then(|p| {
        let parsed = std::fs::read_to_string(p)
            .ok()
            .and_then(|prior| extract_number(&prior, "guest_mips_total"));
        if parsed.is_none() {
            eprintln!("warning: --baseline {p}: unreadable or missing guest_mips_total; ignoring");
        }
        let prior_mips = parsed?;
        Some((prior_mips, total_mips / prior_mips))
    });
    if let Some((prior_mips, s)) = speedup {
        println!("  speedup vs baseline run ({prior_mips:.2} MIPS): {s:.2}x");
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"machine\": \"{}\",\n", machine.name()));
    json.push_str(&format!("  \"reps_per_cell\": {REPS},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"guest_insns\": {}, \"wall_ms\": {:.3}, \"mips\": {:.3}}}{}\n",
            c.name,
            c.insns,
            c.wall_s * 1e3,
            c.insns as f64 / c.wall_s / 1e6,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"guest_insns_total\": {total_insns},\n"));
    json.push_str(&format!("  \"wall_ms_total\": {:.3},\n", total_wall * 1e3));
    if let Some((prior_mips, s)) = speedup {
        json.push_str(&format!("  \"baseline_mips_total\": {prior_mips:.3},\n"));
        json.push_str(&format!("  \"speedup_vs_baseline\": {s:.3},\n"));
    }
    json.push_str(&format!("  \"guest_mips_total\": {total_mips:.3}\n"));
    json.push_str("}\n");
    std::fs::write("BENCH_vm.json", &json).expect("write BENCH_vm.json");
    println!("wrote BENCH_vm.json");
}
