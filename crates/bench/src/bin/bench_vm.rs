//! Host-side VM throughput benchmark: how fast the simulator itself
//! runs, independent of the simulated cycle model.
//!
//! Measures guest MIPS (million simulated instructions per host second)
//! and wall-clock over the `Scale::Test` workloads, for baseline and
//! full-R²C builds, and writes the results to `BENCH_vm.json`.
//!
//! Methodology: one warm-up `Vm::new` + run per cell (decodes the
//! image, allocates pages), then `REPS` timed `reset_to_image` + run
//! iterations. That matches how the serve fleet and the variant pool
//! actually execute — a pooled worker is reset to its image, not
//! rebuilt — and so isolates steady-state interpreter throughput from
//! one-time setup. The decoded program is shared by all repetitions
//! through the decode cache.
//!
//! Simulated cycle counts are a pure function of the seed; this binary
//! exists to track the *host-side* cost of producing them, which the
//! decoded-IR engine (superinstruction fusion, block runs, batched
//! icache accounting), the software TLB, and the dense dispatch table
//! optimize.
//!
//! Flags:
//! * `--baseline <prior BENCH_vm.json>` — report the aggregate speedup
//!   against a previously recorded run.
//! * `--smoke` — CI perf gate: fewer reps, and exit non-zero unless
//!   aggregate MIPS ≥ [`SMOKE_FLOOR_MIPS`] (set well below the
//!   recorded number to absorb noisy shared runners).
//!
//! Per-cell `prev_mips` / `speedup_vs_prev` fields in the JSON compare
//! against the `BENCH_vm.json` being overwritten, so the checked-in
//! file always documents its own delta.

use std::time::Instant;

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::Module;
use r2c_vm::{ExitStatus, MachineKind, Vm, VmConfig};
use r2c_workloads::{captured_workloads, spec_workloads, Scale};

/// Repetitions per (workload, config) cell — Scale::Test programs run
/// in milliseconds, so repetition is needed for a stable wall-clock.
const REPS: u32 = 30;

/// Repetitions in `--smoke` mode: enough to warm the branch predictor
/// and get a stable-ish number, small enough for a CI gate.
const SMOKE_REPS: u32 = 5;

/// `--smoke` fails below this aggregate MIPS. The recorded full-run
/// number is ~3x higher; the floor only exists to catch order-of-
/// magnitude regressions (a disabled fast path, an accidental
/// per-instruction allocation) without flaking on loaded runners.
const SMOKE_FLOOR_MIPS: f64 = 150.0;

struct Cell {
    name: String,
    insns: u64,
    wall_s: f64,
    prev_mips: Option<f64>,
}

impl Cell {
    fn mips(&self) -> f64 {
        self.insns as f64 / self.wall_s / 1e6
    }
}

fn run_cell(name: &str, module: &Module, cfg: R2cConfig, machine: MachineKind, reps: u32) -> Cell {
    let image = R2cCompiler::new(cfg).build(module).expect("compile failed");
    let vm_cfg = VmConfig::new(machine.config());
    // Warm-up run, excluded from timing: decodes the image, allocates
    // and dirties pages, trains the host branch predictor.
    let mut vm = Vm::new(&image, vm_cfg);
    assert!(matches!(vm.run().status, ExitStatus::Exited(_)));
    let mut insns = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        vm.reset_to_image();
        let out = vm.run();
        assert!(matches!(out.status, ExitStatus::Exited(_)));
        insns += out.stats.instructions;
    }
    Cell {
        name: name.to_string(),
        insns,
        wall_s: start.elapsed().as_secs_f64(),
        prev_mips: None,
    }
}

/// Extracts `"key": <number>` from our own minimal JSON output (no
/// JSON crate in the offline build, and we only ever read files this
/// binary wrote).
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the recorded `mips` of the named cell from a prior
/// `BENCH_vm.json`.
fn extract_cell_mips(json: &str, name: &str) -> Option<f64> {
    let at = json.find(&format!("\"name\": \"{name}\""))?;
    extract_number(&json[at..], "mips")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let reps = if smoke { SMOKE_REPS } else { REPS };

    // The file this run will overwrite provides the per-cell
    // `prev_mips` comparison (skipped in smoke mode, which uses too
    // few reps to be a fair "prev").
    let prior = std::fs::read_to_string("BENCH_vm.json").ok();

    let machine = MachineKind::EpycRome;
    let mut workloads = spec_workloads(Scale::Test);
    // The replay-captured workloads (`cap-*`) ride along: standalone
    // programs minted by `capture --bless` from recorded traces.
    workloads.extend(captured_workloads());
    let mut cells = Vec::new();
    for w in &workloads {
        cells.push(run_cell(
            &format!("{}/baseline", w.name),
            &w.module,
            R2cConfig::baseline(1),
            machine,
            reps,
        ));
        cells.push(run_cell(
            &format!("{}/full", w.name),
            &w.module,
            R2cConfig::full(1),
            machine,
            reps,
        ));
    }
    if let Some(prior) = &prior {
        for c in &mut cells {
            c.prev_mips = extract_cell_mips(prior, &c.name);
        }
    }

    let total_insns: u64 = cells.iter().map(|c| c.insns).sum();
    let total_wall: f64 = cells.iter().map(|c| c.wall_s).sum();
    let total_mips = total_insns as f64 / total_wall / 1e6;

    println!(
        "VM host-side throughput ({} reps per cell, {}):",
        reps,
        machine.name()
    );
    for c in &cells {
        let vs_prev = match c.prev_mips {
            Some(p) if p > 0.0 => format!("  ({:>5.2}x vs prev)", c.mips() / p),
            _ => String::new(),
        };
        println!(
            "  {:<16} {:>12} insns  {:>8.1} ms  {:>7.2} MIPS{vs_prev}",
            c.name,
            c.insns,
            c.wall_s * 1e3,
            c.mips()
        );
    }
    println!(
        "  total: {total_insns} guest insns in {:.1} ms => {total_mips:.2} MIPS",
        total_wall * 1e3
    );

    let speedup = baseline_path.as_ref().and_then(|p| {
        let parsed = std::fs::read_to_string(p)
            .ok()
            .and_then(|prior| extract_number(&prior, "guest_mips_total"));
        if parsed.is_none() {
            eprintln!("warning: --baseline {p}: unreadable or missing guest_mips_total; ignoring");
        }
        let prior_mips = parsed?;
        Some((prior_mips, total_mips / prior_mips))
    });
    if let Some((prior_mips, s)) = speedup {
        println!("  speedup vs baseline run ({prior_mips:.2} MIPS): {s:.2}x");
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"machine\": \"{}\",\n", machine.name()));
    json.push_str(&format!("  \"reps_per_cell\": {reps},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let mut line = format!(
            "    {{\"name\": \"{}\", \"guest_insns\": {}, \"wall_ms\": {:.3}, \"mips\": {:.3}",
            c.name,
            c.insns,
            c.wall_s * 1e3,
            c.mips()
        );
        if let Some(p) = c.prev_mips.filter(|p| *p > 0.0) {
            line.push_str(&format!(
                ", \"prev_mips\": {:.3}, \"speedup_vs_prev\": {:.3}",
                p,
                c.mips() / p
            ));
        }
        line.push_str(&format!(
            "}}{}\n",
            if i + 1 == cells.len() { "" } else { "," }
        ));
        json.push_str(&line);
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"guest_insns_total\": {total_insns},\n"));
    json.push_str(&format!("  \"wall_ms_total\": {:.3},\n", total_wall * 1e3));
    if let Some((prior_mips, s)) = speedup {
        json.push_str(&format!("  \"baseline_mips_total\": {prior_mips:.3},\n"));
        json.push_str(&format!("  \"speedup_vs_baseline\": {s:.3},\n"));
    }
    json.push_str(&format!("  \"guest_mips_total\": {total_mips:.3}\n"));
    json.push_str("}\n");
    let out = if smoke {
        "BENCH_vm_smoke.json"
    } else {
        "BENCH_vm.json"
    };
    std::fs::write(out, &json).expect("write bench json");
    println!("wrote {out}");

    if smoke && total_mips < SMOKE_FLOOR_MIPS {
        eprintln!(
            "PERF SMOKE FAIL: aggregate {total_mips:.2} MIPS < floor {SMOKE_FLOOR_MIPS:.0} MIPS"
        );
        std::process::exit(1);
    }
}
