//! Regenerates the **fleet-scaling evaluation**: copy-on-write worker
//! forking driven to 1000+ workers under an open-loop (Poisson) arrival
//! process, with request-latency tail percentiles and a fork-cost table
//! proving that CoW forks and resets are O(dirty pages) — independent
//! of image size — while the pre-CoW deep copy scales with the image.
//!
//! ```text
//! cargo run --release -p r2c-bench --bin report_fleet -- \
//!     [--smoke] [--verify-determinism]
//! ```
//!
//! * `--smoke` — CI sizes (smaller fleets and schedules, same
//!   structure and the same exit-code gates).
//! * `--verify-determinism` — re-run every fleet scenario serially and
//!   fail unless the monitor log, metrics and per-request latencies are
//!   bit-identical to the work-stealing parallel run.
//!
//! Writes `BENCH_fleet.json` with a `deterministic` section (scaling
//! curve, tail percentiles, CoW-vs-deep equivalence — pure functions of
//! the seeds) and a `host` section (wall-clock throughput and the
//! fork-cost table, which depend on the machine running the report).
//!
//! Exits non-zero if a scaling invariant fails:
//! * a warm CoW fork of a large image must cost no more than 10x a CoW
//!   fork of a small image (floored at 1 us — forks must not scale
//!   with image size);
//! * the deep copy must visibly scale with the image (the contrast that
//!   makes the CoW number meaningful);
//! * a CoW fork must copy zero private frames up front;
//! * the fleet must produce bit-identical logs, metrics and latencies
//!   with CoW disabled (`no_cow`), proving CoW is guest-invisible.

use std::process::ExitCode;
use std::time::Instant;

use r2c_attacks::victim::victim_module;
use r2c_bench::TablePrinter;
use r2c_core::R2cConfig;
use r2c_serve::{run_fleet, ExecMode, FleetConfig, FleetRun, ReactionPolicy, Schedule};
use r2c_vm::image::{Image, NativeKind, SectionLayout, Symbol, SymbolKind};
use r2c_vm::machine::MachineKind;
use r2c_vm::{Insn, Vm, VmConfig, PAGE_SIZE};

struct Sizes {
    /// Fleet sizes for the workers-vs-throughput curve.
    fleets: Vec<u32>,
    /// Open-loop events per worker in each scaling run.
    events_per_worker: usize,
    /// Workers in the tail-latency scenario.
    tail_workers: u32,
    /// Events in the tail-latency scenario.
    tail_events: usize,
    /// Timing iterations per fork-cost cell.
    fork_iters: usize,
}

struct Args {
    smoke: bool,
    verify: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        verify: false,
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--verify-determinism" => args.verify = true,
            other => panic!("unknown argument {other:?} (try --smoke/--verify-determinism)"),
        }
    }
    args
}

/// Runs a scenario in work-stealing parallel mode; with `verify`,
/// re-runs serially and records any divergence (log, metrics, or the
/// per-request latency vector) in `errors`.
fn run_verified(
    module: &r2c_ir::Module,
    fc: &FleetConfig,
    sched: &Schedule,
    verify: bool,
    label: &str,
    errors: &mut Vec<String>,
) -> (FleetRun, f64) {
    let t0 = Instant::now();
    let parallel = run_fleet(module, fc, sched, ExecMode::Parallel);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    if verify {
        let serial = run_fleet(module, fc, sched, ExecMode::Serial);
        if serial.log != parallel.log {
            errors.push(format!("{label}: parallel log diverged from serial"));
        }
        if serial.metrics != parallel.metrics {
            errors.push(format!("{label}: parallel metrics diverged from serial"));
        }
        if serial.request_latencies != parallel.request_latencies {
            errors.push(format!("{label}: parallel latencies diverged from serial"));
        }
    }
    (parallel, wall_ms)
}

/// Nearest-rank percentile (q in [0,1]) over simulated-cycle latencies.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Synthesizes a bootable image whose initialized data section spans
/// `data_pages` pages, so fork cost can be measured against image size.
fn synthetic_image(data_pages: u64) -> Image {
    let text_base = 0x40_0000u64;
    let data_base = 0x6000_0000u64;
    let data_len = data_pages * PAGE_SIZE;
    Image {
        insns: vec![Insn::Ret],
        insn_addrs: vec![text_base],
        layout: SectionLayout {
            text_base,
            text_end: text_base + PAGE_SIZE,
            data_base,
            data_end: data_base + data_len,
            heap_base: 0x10_0000_0000,
            heap_size: 16 * 1024 * 1024,
            stack_top: 0x7fff_ffff_f000,
            stack_size: 1024 * 1024,
        },
        entry: text_base,
        constructors: vec![],
        data_init: vec![(data_base, vec![0xA5u8; data_len as usize])],
        xom: true,
        symbols: vec![Symbol {
            name: "main".into(),
            addr: text_base,
            size: 0,
            kind: SymbolKind::Function,
        }],
        natives: vec![NativeKind::Malloc, NativeKind::Free],
        unwind: Default::default(),
    }
}

/// Median of timing samples, in microseconds.
fn median_us(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

struct ForkRow {
    image_pages: usize,
    cow_fork_us: f64,
    cow_reset_us: f64,
    deep_fork_us: f64,
    private_after_cow_fork: usize,
}

/// Times CoW fork, CoW reset (8 dirty pages) and the pre-CoW deep fork
/// for one image size.
fn fork_cost(data_pages: u64, iters: usize) -> ForkRow {
    let image = synthetic_image(data_pages);
    let cfg = VmConfig {
        no_cow: false,
        ..VmConfig::new(MachineKind::EpycRome.config())
    };
    let vm = Vm::new(&image, cfg);
    let image_pages = vm.mem.resident_pages();

    // Warm CoW fork: O(regions), no page copies.
    let mut cow_fork = Vec::with_capacity(iters);
    let mut private_after = usize::MAX;
    for _ in 0..iters + 2 {
        let t0 = Instant::now();
        let child = vm.fork_from_image();
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        private_after = private_after.min(child.mem.private_frames());
        cow_fork.push(dt);
        drop(child);
    }
    cow_fork.drain(..2); // warmup

    // CoW reset with a fixed dirty set: O(dirty pages), not O(image).
    let mut worker = vm.fork_from_image();
    let data_base = image.layout.data_base;
    let mut cow_reset = Vec::with_capacity(iters);
    for i in 0..iters {
        for p in 0..8u64 {
            worker
                .mem
                .write_u64(data_base + p * PAGE_SIZE, i as u64)
                .expect("dirtying data page");
        }
        let t0 = Instant::now();
        worker.reset_to_image();
        cow_reset.push(t0.elapsed().as_secs_f64() * 1e6);
    }

    // The pre-CoW path: every fork deep-copies the whole image.
    let deep_cfg = VmConfig {
        no_cow: true,
        ..cfg
    };
    let deep_vm = Vm::new(&image, deep_cfg);
    let mut deep_fork = Vec::with_capacity(iters);
    for _ in 0..iters + 2 {
        let t0 = Instant::now();
        let child = deep_vm.fork_from_image();
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        deep_fork.push(dt);
        drop(child);
    }
    deep_fork.drain(..2);

    ForkRow {
        image_pages,
        cow_fork_us: median_us(cow_fork),
        cow_reset_us: median_us(cow_reset),
        deep_fork_us: median_us(deep_fork),
        private_after_cow_fork: private_after,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let sizes = if args.smoke {
        Sizes {
            fleets: vec![8, 32, 128, 256],
            events_per_worker: 2,
            tail_workers: 128,
            tail_events: 512,
            fork_iters: 8,
        }
    } else {
        Sizes {
            fleets: vec![8, 64, 256, 1024],
            events_per_worker: 4,
            tail_workers: 256,
            tail_events: 2048,
            fork_iters: 32,
        }
    };
    let mut errors: Vec<String> = Vec::new();
    let victim = victim_module();
    let build = R2cConfig::full(0);

    // Calibrate the open-loop arrival rate from the deterministic
    // cost of a request, targeting ~50% fleet utilization: with mean
    // service time S cycles and W workers, a global mean gap of
    // 2S/W keeps the fleet half loaded on average.
    let calib_sched = Schedule::generate(0xCA11, 4, 64, 0);
    let calib = run_fleet(
        &victim,
        &FleetConfig::new(build, ReactionPolicy::RespawnFreshVariant),
        &calib_sched,
        ExecMode::Serial,
    );
    let service_cycles = calib.metrics.cycles_per_request().max(1.0);
    let gap_for = |workers: u32| ((2.0 * service_cycles / workers as f64) as u64).max(1);

    // -- 1. Workers vs throughput (open-loop, light probe load) -------
    println!("== Fleet scaling: workers vs throughput (open-loop arrivals) ==\n");
    let t = TablePrinter::new(&[9, 8, 12, 8, 10, 10, 11]);
    t.row(&[
        "workers".into(),
        "events".into(),
        "served".into(),
        "avail".into(),
        "cyc/req".into(),
        "wall ms".into(),
        "req/s".into(),
    ]);
    t.sep();
    struct ScaleRow {
        workers: u32,
        events: usize,
        run: FleetRun,
        wall_ms: f64,
    }
    let mut scaling: Vec<ScaleRow> = Vec::new();
    for &workers in &sizes.fleets {
        let events = workers as usize * sizes.events_per_worker;
        let sched = Schedule::generate_open_loop(0x51ED, workers, events, 50, gap_for(workers));
        let fc = FleetConfig {
            fleet_seed: 42,
            ..FleetConfig::new(build, ReactionPolicy::RespawnFreshVariant).sized_for(workers)
        };
        let (run, wall_ms) = run_verified(
            &victim,
            &fc,
            &sched,
            args.verify,
            &format!("scale/{workers}"),
            &mut errors,
        );
        let m = &run.metrics;
        let req_per_s = if wall_ms > 0.0 {
            m.served as f64 / (wall_ms / 1e3)
        } else {
            0.0
        };
        t.row(&[
            workers.to_string(),
            events.to_string(),
            format!("{}/{}", m.served, m.requests),
            format!("{:.3}", m.availability()),
            format!("{:.0}", m.cycles_per_request()),
            format!("{wall_ms:.1}"),
            format!("{req_per_s:.0}"),
        ]);
        scaling.push(ScaleRow {
            workers,
            events,
            run,
            wall_ms,
        });
    }
    let served_small = scaling.first().map_or(0, |r| r.run.metrics.served);
    let served_large = scaling.last().map_or(0, |r| r.run.metrics.served);
    if served_large <= served_small {
        errors.push(format!(
            "throughput curve is flat: {served_small} served at {} workers vs {served_large} at {}",
            scaling.first().map_or(0, |r| r.workers),
            scaling.last().map_or(0, |r| r.workers),
        ));
    }

    // -- 2. Tail latency under probe load -----------------------------
    println!("\n== Request-latency percentiles under probe load (open-loop) ==\n");
    let tail_gap = gap_for(sizes.tail_workers);
    let tail_sched =
        Schedule::generate_open_loop(0x7A11, sizes.tail_workers, sizes.tail_events, 150, tail_gap);
    let tail_fc = FleetConfig {
        fleet_seed: 7,
        ..FleetConfig::new(build, ReactionPolicy::RespawnFreshVariant).sized_for(sizes.tail_workers)
    };
    let (tail_run, tail_wall_ms) = run_verified(
        &victim,
        &tail_fc,
        &tail_sched,
        args.verify,
        "tail/probe-load",
        &mut errors,
    );
    let mut lat = tail_run.request_latencies.clone();
    lat.sort_unstable();
    let (p50, p99, p999) = (
        percentile(&lat, 0.50),
        percentile(&lat, 0.99),
        percentile(&lat, 0.999),
    );
    println!(
        "{} workers, {} events (15% probes), mean gap {} cycles:",
        sizes.tail_workers, sizes.tail_events, tail_gap
    );
    println!(
        "  served {}  p50 {} cycles  p99 {} cycles  p99.9 {} cycles  max {} cycles",
        lat.len(),
        p50,
        p99,
        p999,
        lat.last().copied().unwrap_or(0)
    );
    if lat.is_empty() {
        errors.push("tail-latency scenario served no requests".into());
    }

    // -- 3. CoW must be guest-invisible at fleet scale ----------------
    // The same tail scenario with the pre-CoW deep-copy memory path
    // must produce bit-identical logs, metrics and latencies.
    let deep_fc = FleetConfig {
        no_cow: true,
        ..tail_fc.clone()
    };
    let deep_run = run_fleet(&victim, &deep_fc, &tail_sched, ExecMode::Parallel);
    let cow_log_ok = deep_run.log == tail_run.log;
    let cow_metrics_ok = deep_run.metrics == tail_run.metrics;
    let cow_lat_ok = deep_run.request_latencies == tail_run.request_latencies;
    if cow_log_ok && cow_metrics_ok && cow_lat_ok {
        println!("\ncow-vs-deep: logs, metrics and latencies bit-identical");
    } else {
        errors.push(format!(
            "CoW leaked into guest state: log identical = {cow_log_ok}, \
             metrics identical = {cow_metrics_ok}, latencies identical = {cow_lat_ok}"
        ));
    }

    // -- 4. Fork cost vs image size -----------------------------------
    println!("\n== Fork cost vs image size (warm CoW vs deep copy) ==\n");
    let fork_pages: [u64; 3] = [16, 256, 4096];
    let t = TablePrinter::new(&[13, 13, 14, 14, 12]);
    t.row(&[
        "image pages".into(),
        "cow fork us".into(),
        "cow reset us".into(),
        "deep fork us".into(),
        "cow frames".into(),
    ]);
    t.sep();
    let rows: Vec<ForkRow> = fork_pages
        .iter()
        .map(|&p| fork_cost(p, sizes.fork_iters))
        .collect();
    for r in &rows {
        t.row(&[
            r.image_pages.to_string(),
            format!("{:.2}", r.cow_fork_us),
            format!("{:.2}", r.cow_reset_us),
            format!("{:.2}", r.deep_fork_us),
            r.private_after_cow_fork.to_string(),
        ]);
    }
    let small = &rows[0];
    let large = &rows[rows.len() - 1];
    // The gate: warm fork/reset cost must not scale with image size
    // (10x slack over a 1 us floor absorbs timer noise on tiny medians).
    let cow_budget = |small_us: f64| 10.0 * small_us.max(1.0);
    if large.cow_fork_us > cow_budget(small.cow_fork_us) {
        errors.push(format!(
            "CoW fork scales with image size: {:.2} us at {} pages vs {:.2} us at {} pages",
            large.cow_fork_us, large.image_pages, small.cow_fork_us, small.image_pages
        ));
    }
    if large.cow_reset_us > cow_budget(small.cow_reset_us) {
        errors.push(format!(
            "CoW reset scales with image size: {:.2} us at {} pages vs {:.2} us at {} pages",
            large.cow_reset_us, large.image_pages, small.cow_reset_us, small.image_pages
        ));
    }
    if large.deep_fork_us < 3.0 * small.deep_fork_us {
        errors.push(format!(
            "deep fork does not scale with image size ({:.2} us vs {:.2} us) — \
             the CoW comparison is not measuring anything",
            large.deep_fork_us, small.deep_fork_us
        ));
    }
    if let Some(r) = rows.iter().find(|r| r.private_after_cow_fork != 0) {
        errors.push(format!(
            "CoW fork copied {} private frames up front at {} image pages",
            r.private_after_cow_fork, r.image_pages
        ));
    }
    println!(
        "\ncow fork {:.2} -> {:.2} us across a {}x image-size increase; \
         deep fork {:.2} -> {:.2} us",
        small.cow_fork_us,
        large.cow_fork_us,
        large.image_pages / small.image_pages.max(1),
        small.deep_fork_us,
        large.deep_fork_us
    );

    // -- BENCH_fleet.json ---------------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"smoke\": {}, \"verified_determinism\": {},\n",
        args.smoke, args.verify
    ));
    json.push_str("  \"deterministic\": {\n");
    json.push_str(&format!(
        "    \"service_cycles_per_request\": {service_cycles:.1},\n"
    ));
    json.push_str("    \"scaling\": [\n");
    for (i, r) in scaling.iter().enumerate() {
        let m = &r.run.metrics;
        json.push_str(&format!(
            "      {{\"workers\": {}, \"events\": {}, \"served\": {}, \"requests\": {}, \
             \"availability\": {:.4}, \"cycles_per_request\": {:.1}, \"respawns\": {}}}{}\n",
            r.workers,
            r.events,
            m.served,
            m.requests,
            m.availability(),
            m.cycles_per_request(),
            m.respawns,
            if i + 1 == scaling.len() { "" } else { "," }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"tail_latency\": {{\"workers\": {}, \"events\": {}, \"probe_per_mille\": 150, \
         \"mean_gap_cycles\": {}, \"served\": {}, \"p50_cycles\": {}, \"p99_cycles\": {}, \
         \"p999_cycles\": {}, \"max_cycles\": {}}},\n",
        sizes.tail_workers,
        sizes.tail_events,
        tail_gap,
        lat.len(),
        p50,
        p99,
        p999,
        lat.last().copied().unwrap_or(0)
    ));
    json.push_str(&format!(
        "    \"cow_equivalence\": {{\"log_identical\": {cow_log_ok}, \
         \"metrics_identical\": {cow_metrics_ok}, \"latencies_identical\": {cow_lat_ok}}}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"host\": {\n");
    json.push_str("    \"scaling_wall\": [\n");
    for (i, r) in scaling.iter().enumerate() {
        let req_per_s = if r.wall_ms > 0.0 {
            r.run.metrics.served as f64 / (r.wall_ms / 1e3)
        } else {
            0.0
        };
        json.push_str(&format!(
            "      {{\"workers\": {}, \"wall_ms\": {:.2}, \"requests_per_sec\": {:.0}}}{}\n",
            r.workers,
            r.wall_ms,
            req_per_s,
            if i + 1 == scaling.len() { "" } else { "," }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!("    \"tail_wall_ms\": {tail_wall_ms:.2},\n"));
    json.push_str("    \"fork_cost\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"image_pages\": {}, \"cow_fork_us\": {:.3}, \"cow_reset_us\": {:.3}, \
             \"deep_fork_us\": {:.3}, \"private_frames_after_cow_fork\": {}}}{}\n",
            r.image_pages,
            r.cow_fork_us,
            r.cow_reset_us,
            r.deep_fork_us,
            r.private_after_cow_fork,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("    ]\n");
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("\nwrote BENCH_fleet.json");

    if errors.is_empty() {
        println!("ok: all fleet-scaling invariants hold");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("FAIL: {e}");
        }
        ExitCode::FAILURE
    }
}
