//! Regenerates **Table 3**: comparison of R²C with related
//! randomization-based defenses.
//!
//! The SPEC-overhead column quotes the published numbers (they come
//! from incomparable testbeds — the paper makes the same caveat); the
//! attack-resistance columns are **measured** by mounting this
//! reproduction's ROP / JIT-ROP / PIROP / AOCR attacks against an
//! executable model of each defense (see `r2c-baselines`). A filled
//! circle (●) means the defense stopped every attempt.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use r2c_attacks::victim::{build_victim, run_victim};
use r2c_attacks::{aocr, jitrop, pirop, rop, AttackerKnowledge, Outcome};
use r2c_baselines::DefenseKind;
use r2c_bench::{parallel_map, TablePrinter};

fn main() {
    let trials: u64 = if std::env::args().any(|a| a == "--large") {
        48
    } else {
        16
    };
    println!("Table 3: defense comparison (attack columns measured over {trials} variants each)\n");
    let t = TablePrinter::new(&[12, 22, 4, 4, 5, 8, 6, 5]);
    t.row(&[
        "defense".into(),
        "SPEC overhead (publ.)".into(),
        "C".into(),
        "C++".into(),
        "ROP".into(),
        "JIT-ROP".into(),
        "PIROP".into(),
        "AOCR".into(),
    ]);
    t.sep();

    // One row per defense; each row seeds its own attack RNG, so rows
    // are independent cells that can be measured concurrently.
    let rows = parallel_map(&DefenseKind::ALL, |&defense| {
        let cfg = defense.config(0);
        let k = AttackerKnowledge::profile(&cfg, 0xFACE);
        let mut rng = SmallRng::seed_from_u64(33);

        let mut stopped = |attack: &mut dyn FnMut(
            &mut r2c_vm::Vm,
            &r2c_vm::Image,
            &AttackerKnowledge,
            &mut SmallRng,
        ) -> Outcome| {
            let mut successes = 0;
            for seed in 0..trials {
                let v = build_victim(cfg.with_seed(seed));
                let mut vm = run_victim(&v.image);
                if attack(&mut vm, &v.image, &k, &mut rng).is_success() {
                    successes += 1;
                }
            }
            if successes == 0 {
                "●".to_string()
            } else {
                format!("○{}", if successes as u64 == trials { "" } else { "~" })
            }
        };

        let rop_cell = stopped(&mut |vm, img, k, _| rop::classic_rop(vm, img, k, 4));
        let jitrop_cell = {
            // JIT-ROP column: direct if readable text, else indirect.
            let mut s = stopped(&mut |vm, img, _, _| jitrop::direct_jitrop(vm, img));
            if s.starts_with('●') {
                // Direct disclosure stopped; score the indirect variant.
                let s2 = stopped(&mut |vm, img, k, rng| jitrop::indirect_jitrop(vm, img, k, rng));
                s = s2;
            }
            s
        };
        let pirop_cell = stopped(&mut |vm, img, k, _| pirop::pirop_attack(vm, img, k));
        // AOCR column: the attacker adapts — against code-pointer
        // hiding the leaked (trampoline) pointer is *called* directly
        // (§2.2); otherwise the default-parameter corruption path runs.
        // Score ○ if either variant gets through.
        let aocr_cell = {
            let a = stopped(&mut |vm, img, k, rng| aocr::aocr_attack(vm, img, k, rng));
            if a.starts_with('●') {
                stopped(&mut |vm, img, k, _| aocr::aocr_direct_fp(vm, img, k))
            } else {
                a
            }
        };
        let (c, cpp) = defense.language_support();
        vec![
            defense.name().into(),
            defense.published_overhead().into(),
            if c { "●" } else { "○" }.to_string(),
            if cpp { "●" } else { "○" }.to_string(),
            rop_cell,
            jitrop_cell,
            pirop_cell,
            aocr_cell,
        ]
    });
    for row in &rows {
        t.row(row);
    }
    println!("\n● = all attack attempts stopped; ○ = attack succeeded (○~ = sometimes).");
    println!("Language columns and published overheads quoted from the respective papers;");
    println!("attack columns measured against the executable defense models.");
}
