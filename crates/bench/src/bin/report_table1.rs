//! Regenerates **Table 1**: maximum and geometric-mean overhead of
//! R²C's isolated components across the SPEC-like workloads, plus the
//! §6.2.1 offset-invariant-addressing measurement.
//!
//! Paper values (EPYC Rome, §6.2.1–6.2.3):
//!
//! | component | max | geomean |
//! |---|---|---|
//! | Push | 1.21 | 1.06 |
//! | AVX | 1.10 | 1.04 |
//! | BTDP | 1.05 | 1.02 |
//! | Prolog | 1.06 | 1.02 |
//! | Layout | 1.02 | 1.00 |
//! | (OIA alone: geomean +0.79%, max +3.61%) |

use r2c_bench::{baseline_cycles, geomean, median_cycles, parallel_map, TablePrinter};
use r2c_core::{Component, R2cConfig};
use r2c_vm::MachineKind;
use r2c_workloads::{captured_workloads, spec_workloads, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--large") {
        Scale::Large
    } else {
        Scale::Bench
    };
    let runs = 3;
    let machine = MachineKind::EpycRome; // the paper's component-analysis machine
    let mut workloads = spec_workloads(scale);
    // The replay-captured workloads (`cap-*`) ride along: standalone
    // programs minted by `capture --bless` from recorded traces.
    workloads.extend(captured_workloads());

    println!(
        "Table 1: component overheads (machine: {}, {} workloads, median of {} seeds)\n",
        machine.name(),
        workloads.len(),
        runs
    );
    let t = TablePrinter::new(&[10, 8, 8, 14]);
    t.row(&[
        "component".into(),
        "max".into(),
        "geomean".into(),
        "paper (max/geo)".into(),
    ]);
    t.sep();

    let paper = [
        (Component::Push, "1.21 / 1.06"),
        (Component::Avx, "1.10 / 1.04"),
        (Component::Btdp, "1.05 / 1.02"),
        (Component::Prolog, "1.06 / 1.02"),
        (Component::Layout, "1.02 / 1.00"),
        (Component::Oia, "1.04 / 1.008"),
    ];
    // Every (component, workload) cell is independent; each divides by
    // the shared per-workload baseline, which `baseline_cycles`
    // measures once and memoizes.
    let cells: Vec<(Component, usize)> = paper
        .iter()
        .flat_map(|&(c, _)| (0..workloads.len()).map(move |wi| (c, wi)))
        .collect();
    let all_ratios = parallel_map(&cells, |&(component, wi)| {
        let w = &workloads[wi];
        let base = baseline_cycles(&w.module, machine, runs, 10);
        let prot = median_cycles(
            &w.module,
            R2cConfig::component(component, 0),
            machine,
            runs,
            20,
        );
        prot / base
    });
    for (ci, (component, paper_val)) in paper.into_iter().enumerate() {
        let ratios = &all_ratios[ci * workloads.len()..(ci + 1) * workloads.len()];
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        t.row(&[
            component.name().into(),
            format!("{max:.2}"),
            format!("{:.2}", geomean(ratios)),
            paper_val.into(),
        ]);
    }
    println!("\n(OIA row corresponds to §6.2.1: offset-invariant addressing alone,");
    println!(" paper: geomean +0.79%, max +3.61%.)");
}
