//! Regenerates **Table 1**: maximum and geometric-mean overhead of
//! R²C's isolated components across the SPEC-like workloads, plus the
//! §6.2.1 offset-invariant-addressing measurement.
//!
//! Paper values (EPYC Rome, §6.2.1–6.2.3):
//!
//! | component | max | geomean |
//! |---|---|---|
//! | Push | 1.21 | 1.06 |
//! | AVX | 1.10 | 1.04 |
//! | BTDP | 1.05 | 1.02 |
//! | Prolog | 1.06 | 1.02 |
//! | Layout | 1.02 | 1.00 |
//! | (OIA alone: geomean +0.79%, max +3.61%) |

use r2c_bench::{geomean, median_cycles, TablePrinter};
use r2c_core::{Component, R2cConfig};
use r2c_vm::MachineKind;
use r2c_workloads::{spec_workloads, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--large") {
        Scale::Large
    } else {
        Scale::Bench
    };
    let runs = 3;
    let machine = MachineKind::EpycRome; // the paper's component-analysis machine
    let workloads = spec_workloads(scale);

    println!(
        "Table 1: component overheads (machine: {}, {} workloads, median of {} seeds)\n",
        machine.name(),
        workloads.len(),
        runs
    );
    let t = TablePrinter::new(&[10, 8, 8, 14]);
    t.row(&[
        "component".into(),
        "max".into(),
        "geomean".into(),
        "paper (max/geo)".into(),
    ]);
    t.sep();

    let baselines: Vec<f64> = workloads
        .iter()
        .map(|w| median_cycles(&w.module, R2cConfig::baseline(0), machine, runs, 10))
        .collect();

    let paper = [
        (Component::Push, "1.21 / 1.06"),
        (Component::Avx, "1.10 / 1.04"),
        (Component::Btdp, "1.05 / 1.02"),
        (Component::Prolog, "1.06 / 1.02"),
        (Component::Layout, "1.02 / 1.00"),
        (Component::Oia, "1.04 / 1.008"),
    ];
    for (component, paper_val) in paper {
        let mut ratios = Vec::new();
        for (w, base) in workloads.iter().zip(&baselines) {
            let cfg = R2cConfig::component(component, 0);
            let prot = median_cycles(&w.module, cfg, machine, runs, 20);
            ratios.push(prot / base);
        }
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        t.row(&[
            component.name().into(),
            format!("{max:.2}"),
            format!("{:.2}", geomean(&ratios)),
            paper_val.into(),
        ]);
    }
    println!("\n(OIA row corresponds to §6.2.1: offset-invariant addressing alone,");
    println!(" paper: geomean +0.79%, max +3.61%.)");
}
