//! Regenerates **Table 2**: median dynamic call frequencies of the
//! SPEC CPU 2017 benchmarks (tail calls excluded — our code generator
//! emits none, matching the paper's instrumentation which ignores them
//! because they push no return address).
//!
//! Our workloads run at a 1:10⁶ scale of the paper's counts by
//! construction; the check here is that the *measured* (not generated)
//! dynamic call counts preserve the paper's ordering and relative
//! magnitudes.

use r2c_bench::{measure_once, parallel_map, TablePrinter};
use r2c_core::R2cConfig;
use r2c_vm::MachineKind;
use r2c_workloads::{spec_workloads, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--large") {
        Scale::Large
    } else {
        Scale::Bench
    };
    let factor: u64 = match scale {
        Scale::Large => 100_000,
        _ => 1_000_000,
    };
    let workloads = spec_workloads(scale);
    println!("Table 2: dynamic call frequencies (measured in the VM, baseline build)\n");
    let t = TablePrinter::new(&[11, 14, 16, 18]);
    t.row(&[
        "benchmark".into(),
        "measured".into(),
        "x scale (1:10^6)".into(),
        "paper (Table 2)".into(),
    ]);
    t.sep();
    let rows: Vec<(String, u64, u64, u64)> = parallel_map(&workloads, |w| {
        let m = measure_once(&w.module, R2cConfig::baseline(0), MachineKind::EpycRome, 1);
        (
            w.name.to_string(),
            m.stats.calls,
            m.stats.calls * factor,
            w.table2_calls,
        )
    });
    for (name, measured, scaled, paper) in &rows {
        t.row(&[
            name.clone(),
            format!("{measured}"),
            format!("{scaled}"),
            format!("{paper}"),
        ]);
    }
    // Ordering check against the paper.
    let mut by_measured = rows.clone();
    by_measured.sort_by_key(|r| std::cmp::Reverse(r.1));
    let mut by_paper = rows.clone();
    by_paper.sort_by_key(|r| std::cmp::Reverse(r.3));
    let same_order = by_measured.iter().zip(&by_paper).all(|(a, b)| a.0 == b.0);
    println!(
        "\nordering vs paper: {}",
        if same_order {
            "IDENTICAL"
        } else {
            "differs (scaled counts quantize small benchmarks)"
        }
    );
}
