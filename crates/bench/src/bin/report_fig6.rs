//! Regenerates **Figure 6**: the performance impact of full R²C
//! protection per benchmark on the four evaluation machines.
//!
//! Paper shape (§6.2.4): geometric means between 6.6% and 8.5%, with
//! the Xeon highest at 8.5%; omnetpp worst-case 21% on the Xeon;
//! call-heavy benchmarks (omnetpp, xalancbmk, nab) hurt most;
//! compute-bound ones (lbm, xz, imagick, x264) barely move.

use r2c_bench::{baseline_cycles, geomean, median_cycles, parallel_map, pct, TablePrinter};
use r2c_core::R2cConfig;
use r2c_vm::MachineKind;
use r2c_workloads::{captured_workloads, spec_workloads, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--large") {
        Scale::Large
    } else {
        Scale::Bench
    };
    let runs = 3;
    let mut workloads = spec_workloads(scale);
    // The replay-captured workloads (`cap-*`) ride along: standalone
    // programs minted by `capture --bless` from recorded traces.
    workloads.extend(captured_workloads());
    println!(
        "Figure 6: full R2C performance impact per benchmark (median of {runs} seeds per cell)\n"
    );
    let t = TablePrinter::new(&[11, 9, 9, 9, 9]);
    let mut header = vec!["benchmark".to_string()];
    header.extend(MachineKind::ALL.iter().map(|m| m.name().to_string()));
    t.row(&header);
    t.sep();

    // One measurement cell per (workload, machine); cells are
    // independent, so fan them out and print in input order.
    let cells: Vec<(usize, MachineKind)> = (0..workloads.len())
        .flat_map(|wi| MachineKind::ALL.into_iter().map(move |m| (wi, m)))
        .collect();
    let ratios = parallel_map(&cells, |&(wi, machine)| {
        let w = &workloads[wi];
        let base = baseline_cycles(&w.module, machine, runs, 30);
        let prot = median_cycles(&w.module, R2cConfig::full(0), machine, runs, 40);
        prot / base
    });

    let mut per_machine: Vec<Vec<f64>> = vec![Vec::new(); MachineKind::ALL.len()];
    for (wi, w) in workloads.iter().enumerate() {
        let mut row = vec![w.name.to_string()];
        for mi in 0..MachineKind::ALL.len() {
            let ratio = ratios[wi * MachineKind::ALL.len() + mi];
            per_machine[mi].push(ratio);
            row.push(pct(ratio));
        }
        t.row(&row);
    }
    t.sep();
    let mut geo_row = vec!["geomean".to_string()];
    for ratios in &per_machine {
        geo_row.push(pct(geomean(ratios)));
    }
    t.row(&geo_row);
    println!("\npaper: geometric mean 6.6%-8.5% across machines (Xeon highest);");
    println!("omnetpp up to 21% on Xeon; lbm/xz/x264/imagick near baseline.");
}
