//! Regenerates the **§6.3 scalability result**: R²C compiles large,
//! complex programs correctly. The paper builds WebKit (4.5 MLoC) and
//! Chromium (32 MLoC) and runs their test suites; at this substrate's
//! scale we generate programs of increasing size (thousands of
//! functions, hundreds of thousands of IR instructions), compile them
//! with full protection, and verify their self-checking output against
//! the reference interpreter — the same "the built artifact passes its
//! tests" criterion.

use std::time::Instant;

use r2c_bench::{parallel_map, TablePrinter};
use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::interpret;
use r2c_vm::{ExitStatus, MachineKind, Vm, VmConfig};
use r2c_workloads::{build_workload, Profile};

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    println!("Scalability (paper §6.3): compiling and validating large programs\n");
    let t = TablePrinter::new(&[10, 10, 12, 12, 12, 10]);
    t.row(&[
        "funcs".into(),
        "IR insts".into(),
        "text bytes".into(),
        "compile ms".into(),
        "output".into(),
        "status".into(),
    ]);
    t.sep();
    let sizes: &[u32] = if large {
        &[100, 400, 1600, 6400, 12800]
    } else {
        &[100, 400, 1600, 4000]
    };
    // Module generation and the reference interpretation are untimed
    // and independent per size — fan them out. The *timed* compiles
    // below stay serial so `compile ms` is not skewed by contention.
    let prepared = parallel_map(sizes, |&funcs| {
        let profile = Profile {
            name: "scale",
            table2_calls: funcs as u64,
            chain_len: 32,
            work: 12,
            inner_loop: 1,
            funcs,
            array_kb: 64,
            indirect_every: 2,
            recursion: 4,
            chase: 16,
            heap_mb: 0,
        };
        let module = build_workload(&profile, 4000);
        let expected = interpret(&module, "main", 1_000_000_000).expect("interp");
        (module, expected)
    });
    for (&funcs, (module, expected)) in sizes.iter().zip(&prepared) {
        let ir_insts: usize = module.funcs.iter().map(|f| f.inst_count()).sum();
        let start = Instant::now();
        let (image, _info) = R2cCompiler::new(R2cConfig::full(7))
            .build_with_info(module)
            .expect("compile");
        let compile_ms = start.elapsed().as_millis();
        let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
        let out = vm.run();
        let ok = out.status == ExitStatus::Exited(expected.ret) && vm.output == expected.output;
        t.row(&[
            format!("{funcs}"),
            format!("{ir_insts}"),
            format!("{}", image.text_size()),
            format!("{compile_ms}"),
            format!("{:?}", vm.output),
            if ok { "OK".into() } else { "MISMATCH".into() },
        ]);
        assert!(ok, "scalability validation failed at {funcs} functions");
    }
    println!("\nAll sizes compiled with full R2C and validated against the reference");
    println!("interpreter (the paper's equivalent: WebKit/Chromium test suites pass).");
}
