//! Internal calibration tool: prints per-workload baseline
//! cycles-per-call and component overheads so the cost model and
//! workload profiles can be checked against the paper's anchors
//! (not one of the report binaries; kept for reproducibility of the
//! calibration process described in DESIGN.md).

use r2c_bench::{baseline_cycles, median_cycles, parallel_map, TablePrinter};
use r2c_core::{Component, R2cConfig};
use r2c_vm::MachineKind;
use r2c_workloads::{spec_workloads, Scale};

fn main() {
    let machine = MachineKind::EpycRome;
    let runs = 2;
    let workloads = spec_workloads(Scale::Bench);
    let t = TablePrinter::new(&[11, 10, 9, 7, 7, 7, 7, 7, 7]);
    t.row(&[
        "bench".into(),
        "cycles".into(),
        "cyc/call".into(),
        "push".into(),
        "avx".into(),
        "btdp".into(),
        "prolog".into(),
        "oia".into(),
        "full".into(),
    ]);
    t.sep();
    // Each workload's row is an independent bundle of measurements;
    // fan the rows out and print them in table order.
    let rows = parallel_map(&workloads, |w| {
        let m = r2c_bench::measure_once(&w.module, R2cConfig::baseline(0), machine, 1);
        let base = baseline_cycles(&w.module, machine, runs, 1);
        let ratio = |cfg: R2cConfig| median_cycles(&w.module, cfg, machine, runs, 2) / base;
        vec![
            w.name.to_string(),
            format!("{:.2e}", base),
            format!("{:.0}", m.cycles / m.stats.calls.max(1) as f64),
            format!("{:.3}", ratio(R2cConfig::component(Component::Push, 0))),
            format!("{:.3}", ratio(R2cConfig::component(Component::Avx, 0))),
            format!("{:.3}", ratio(R2cConfig::component(Component::Btdp, 0))),
            format!("{:.3}", ratio(R2cConfig::component(Component::Prolog, 0))),
            format!("{:.3}", ratio(R2cConfig::component(Component::Oia, 0))),
            format!("{:.3}", ratio(R2cConfig::full(0))),
        ]
    });
    for row in &rows {
        t.row(row);
    }
}
