//! The r2c-trace profiler driver: builds a workload with compile
//! telemetry, runs it twice per machine model — once untraced, once
//! under the execution tracer — and writes `PROFILE_<workload>.json`
//! with the per-pass compile report, per-function cycle attribution,
//! heap telemetry and the bounded event trace.
//!
//! Every profile run doubles as a three-way self-check of the
//! execution engines: the decoded fast engine (fused superinstructions
//! and block runs), the per-instruction engine (`no_fuse`), and the
//! traced reference path must produce [`ExecStats`] that agree in
//! *every* field, or the binary exits non-zero — so CI catches both a
//! tracer that perturbs the simulation and a fused engine that drifts
//! from the reference semantics. Folded stacks are additionally written
//! to `PROFILE_<workload>_<machine>.folded`, ready for `flamegraph.pl`.
//!
//! ```text
//! profile [--workload <name>] [--preset baseline|full|push]
//!         [--machine <name>|all] [--scale test|bench|large]
//!         [--requests N] [--seed N]
//! ```
//!
//! `<name>` is one of the 12 SPEC-style workloads (e.g. `omnetpp`) or
//! `nginx`/`apache`. Defaults: `nginx`, `full`, all machines,
//! `--scale bench`, 500 requests, seed 1.

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::Module;
use r2c_vm::{ExecStats, ExitStatus, MachineKind, TraceConfig, Vm, VmConfig};
use r2c_workloads::{spec_workloads, Scale, ServerKind};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn machine_slug(m: MachineKind) -> String {
    m.name()
        .to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn find_workload(name: &str, scale: Scale, requests: u64) -> Module {
    match name {
        "nginx" => r2c_workloads::webserver_module(ServerKind::Nginx, requests),
        "apache" => r2c_workloads::webserver_module(ServerKind::Apache, requests),
        _ => {
            let workloads = spec_workloads(scale);
            match workloads.into_iter().find(|w| w.name == name) {
                Some(w) => w.module,
                None => {
                    eprintln!(
                        "unknown workload {name:?}; expected nginx, apache, or one of {:?}",
                        spec_workloads(Scale::Test)
                            .iter()
                            .map(|w| w.name)
                            .collect::<Vec<_>>()
                    );
                    std::process::exit(2);
                }
            }
        }
    }
}

/// One field-by-field line per divergence, so a broken tracer is
/// diagnosable from the CI log alone.
fn explain_divergence(untraced: &ExecStats, traced: &ExecStats) {
    let pairs = [
        ("instructions", untraced.instructions, traced.instructions),
        ("cycles", untraced.cycles, traced.cycles),
        ("calls", untraced.calls, traced.calls),
        ("rets", untraced.rets, traced.rets),
        ("native_calls", untraced.native_calls, traced.native_calls),
        (
            "icache_misses",
            untraced.icache_misses,
            traced.icache_misses,
        ),
        ("icache_hits", untraced.icache_hits, traced.icache_hits),
        (
            "max_rss_pages",
            untraced.max_rss_pages as u64,
            traced.max_rss_pages as u64,
        ),
        (
            "avx_transitions",
            untraced.avx_transitions,
            traced.avx_transitions,
        ),
    ];
    for (name, u, t) in pairs {
        if u != t {
            eprintln!("  {name}: untraced {u} != traced {t}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = arg_value(&args, "--workload").unwrap_or_else(|| "nginx".into());
    let preset = arg_value(&args, "--preset").unwrap_or_else(|| "full".into());
    let seed: u64 = arg_value(&args, "--seed").map_or(1, |s| s.parse().expect("--seed"));
    let requests: u64 =
        arg_value(&args, "--requests").map_or(500, |s| s.parse().expect("--requests"));
    let scale = match arg_value(&args, "--scale").as_deref() {
        Some("test") => Scale::Test,
        Some("large") => Scale::Large,
        None | Some("bench") => Scale::Bench,
        Some(other) => {
            eprintln!("unknown scale {other:?}");
            std::process::exit(2);
        }
    };
    let cfg = match preset.as_str() {
        "baseline" => R2cConfig::baseline(seed),
        "full" => R2cConfig::full(seed),
        "push" => R2cConfig::full_push(seed),
        other => {
            eprintln!("unknown preset {other:?}; expected baseline, full or push");
            std::process::exit(2);
        }
    };
    let machines: Vec<MachineKind> = match arg_value(&args, "--machine").as_deref() {
        None | Some("all") => MachineKind::ALL.to_vec(),
        Some(name) => {
            let want: String = name.to_lowercase();
            let found = MachineKind::ALL
                .into_iter()
                .find(|m| machine_slug(*m).contains(&want.replace('-', "_")));
            match found {
                Some(m) => vec![m],
                None => {
                    eprintln!("unknown machine {name:?}");
                    std::process::exit(2);
                }
            }
        }
    };

    let module = find_workload(&workload, scale, requests);
    let (image, _info, report) = R2cCompiler::new(cfg)
        .build_with_report(&module)
        .expect("workload must compile");
    println!(
        "compiled {workload}/{preset} (seed {seed}): {} passes, {} us, text {} -> {} bytes",
        report.passes.len(),
        report.total_wall_us(),
        report.prelink_text_bytes,
        report.image_text_bytes
    );

    let mut entries: Vec<String> = Vec::new();
    for machine in &machines {
        let vm_cfg = VmConfig::new(machine.config());

        let mut plain = Vm::new(&image, vm_cfg);
        let untraced = plain.run();
        assert!(
            matches!(untraced.status, ExitStatus::Exited(_)),
            "untraced run crashed: {:?}",
            untraced.status
        );

        // Second leg of the three-way engine check: the same image on
        // per-instruction decoding (no superinstruction fusion, no
        // block runs) must produce the same simulation bit-for-bit.
        let mut unfused_vm = Vm::new(
            &image,
            VmConfig {
                no_fuse: true,
                ..vm_cfg
            },
        );
        let unfused = unfused_vm.run();
        assert_eq!(unfused.status, untraced.status, "exit status diverged");
        if unfused.stats != untraced.stats {
            eprintln!(
                "FAIL: fused and unfused engines disagree on {} — the \
                 decoded engine's bit-identical contract is broken:",
                machine.name()
            );
            explain_divergence(&untraced.stats, &unfused.stats);
            std::process::exit(1);
        }

        let mut vm = Vm::new(&image, vm_cfg);
        vm.enable_trace(&image, TraceConfig::default());
        let traced = vm.run();
        assert_eq!(traced.status, untraced.status, "exit status diverged");
        if traced.stats != untraced.stats {
            eprintln!(
                "FAIL: tracing perturbed the simulation on {} — the \
                 zero-overhead-when-off contract is broken:",
                machine.name()
            );
            explain_divergence(&untraced.stats, &traced.stats);
            std::process::exit(1);
        }

        let profile = vm.trace_profile().expect("tracer was enabled");
        println!(
            "\n{} — {} cycles, {} insns (traced == untraced == unfused):",
            machine.name(),
            traced.stats.cycles,
            traced.stats.instructions
        );
        println!("  top functions by self cycles:");
        for f in profile.funcs.iter().take(10) {
            println!(
                "    {:<28} {:>14} cycles  {:>11} insns  {:>8} calls  {:>7} i$ miss",
                f.name, f.self_cycles, f.instructions, f.calls, f.icache_misses
            );
        }
        println!(
            "  heap: peak {} live bytes / {} resident pages, end {} bytes / {} pages, \
             {} allocs {} frees, {} pages released, {} quarantined",
            profile.heap.peak_live_bytes,
            profile.heap.peak_resident_pages,
            profile.heap.end_live_bytes,
            profile.heap.end_resident_pages,
            profile.heap.allocs,
            profile.heap.frees,
            profile.heap.released_pages,
            profile.heap.quarantined_pages
        );

        let folded_path = format!("PROFILE_{workload}_{}.folded", machine_slug(*machine));
        std::fs::write(&folded_path, profile.folded_stacks()).expect("write folded stacks");
        println!("  wrote {folded_path}");

        entries.push(format!(
            "    {{\"machine\": \"{}\",\n     \"exec\": {}}}",
            machine.name(),
            profile.to_json().trim_end().replace('\n', "\n     ")
        ));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"workload\": \"{workload}\",\n"));
    json.push_str(&format!("  \"preset\": \"{preset}\",\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!(
        "  \"compile\": {},\n",
        report.to_json().trim_end().replace('\n', "\n  ")
    ));
    json.push_str("  \"machines\": [\n");
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ]\n}\n");
    let out = format!("PROFILE_{workload}.json");
    std::fs::write(&out, &json).expect("write profile json");
    println!("\nwrote {out}");
}
