//! Differential fuzzing campaign driver (`r2c-fuzz` front end).
//!
//! Two modes share one binary:
//!
//! **Smoke mode** (default) generates structure-aware IR modules and
//! pushes each through the differential oracle: reference
//! interpretation vs compiled + diversified execution across a
//! configuration matrix, with `r2c-check` forced on. Divergences are
//! minimized by the delta reducer and persisted as `.r2cir`
//! reproducers in the divergence directory, which is replayed at the
//! start of every later run.
//!
//! **Campaign mode** (`--campaign`) runs the coverage-guided,
//! corpus-evolving campaign from `r2c_fuzz::campaign`: it loads the
//! checked-in corpus, evolves it (energy-weighted mutation vs fresh
//! generation), records a coverage-over-time curve, and can enforce a
//! coverage floor against a checked-in baseline. This is the nightly
//! CI entry point.
//!
//! ```text
//! cargo run --release -p r2c-bench --bin fuzz -- \
//!     --cases 500 --seed 1 [--preset quick|full|<config-name>] \
//!     [--div-dir DIR] \
//!     [--campaign [--corpus DIR] [--blind] [--mutate-ratio R] \
//!      [--minimize] [--refresh] [--time-budget SECS] \
//!      [--coverage-json PATH] [--baseline PATH] [--write-baseline]]
//! ```
//!
//! * `--cases N`        — case budget (default 200; 0 replays only).
//! * `--seed S`         — base seed (smoke: case `i` uses `S + i`;
//!   campaign: seed ladder base).
//! * `--preset P`       — oracle matrix: `quick` (default), `full`, or
//!   one named build config (e.g. `full-push`, `comp-BTDP`).
//! * `--div-dir D`      — divergence-reproducer directory (default
//!   `fuzz-corpus`; kept separate from the coverage corpus).
//! * `--corpus D`       — coverage corpus directory (campaign mode,
//!   default `crates/fuzz/corpus`).
//! * `--blind`          — disable coverage feedback (A/B control arm).
//! * `--mutate-ratio R` — corpus-mutation probability (default 0.5).
//! * `--minimize`       — delta-reduce coverage keepers on admission.
//! * `--refresh`        — run corpus hygiene after the campaign (drop
//!   entries whose bits are subsumed, re-score energies).
//! * `--time-budget S`  — wall-clock cap in seconds (nightly CI).
//! * `--coverage-json P`— write the campaign report JSON to `P`.
//! * `--baseline P`     — fail if the seed-corpus coverage population
//!   drops below the integer stored in `P`.
//! * `--write-baseline` — rewrite `--baseline` with this run's value.
//!
//! Exits non-zero if any case (generated, mutated, or replayed)
//! diverges, or the coverage baseline regresses.

use std::path::PathBuf;
use std::process::ExitCode;

use r2c_bench::{parallel_map, TablePrinter};
use r2c_fuzz::{
    divergence_report, named_configs, reduce_divergence, run_case, run_oracle,
    summarize_divergences, CaseVerdict, Corpus, Divergence, OracleMatrix,
};
use r2c_ir::Module;
use r2c_vm::MachineKind;

struct Args {
    cases: u64,
    seed: u64,
    preset: String,
    div_dir: PathBuf,
    campaign: bool,
    corpus: PathBuf,
    blind: bool,
    mutate_ratio: f64,
    minimize: bool,
    refresh: bool,
    time_budget: Option<u64>,
    coverage_json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        cases: 200,
        seed: 1,
        preset: "quick".to_string(),
        div_dir: PathBuf::from("fuzz-corpus"),
        campaign: false,
        corpus: PathBuf::from("crates/fuzz/corpus"),
        blind: false,
        mutate_ratio: 0.5,
        minimize: false,
        refresh: false,
        time_budget: None,
        coverage_json: None,
        baseline: None,
        write_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--cases" => args.cases = val("--cases").parse().expect("--cases: integer"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed: integer"),
            "--preset" => args.preset = val("--preset"),
            "--div-dir" => args.div_dir = PathBuf::from(val("--div-dir")),
            "--campaign" => args.campaign = true,
            "--corpus" => args.corpus = PathBuf::from(val("--corpus")),
            "--blind" => args.blind = true,
            "--mutate-ratio" => {
                args.mutate_ratio = val("--mutate-ratio")
                    .parse()
                    .expect("--mutate-ratio: float")
            }
            "--minimize" => args.minimize = true,
            "--refresh" => args.refresh = true,
            "--time-budget" => {
                args.time_budget = Some(val("--time-budget").parse().expect("--time-budget: secs"))
            }
            "--coverage-json" => args.coverage_json = Some(PathBuf::from(val("--coverage-json"))),
            "--baseline" => args.baseline = Some(PathBuf::from(val("--baseline"))),
            "--write-baseline" => args.write_baseline = true,
            other => panic!(
                "unknown argument {other:?} (try --cases/--seed/--preset/--div-dir/--campaign)"
            ),
        }
    }
    args
}

fn matrix_for(preset: &str) -> OracleMatrix {
    match preset {
        "quick" => OracleMatrix::quick(),
        "full" => OracleMatrix::full(),
        // Fleet determinism cell only (serial vs parallel r2c-serve).
        "fleet-respawn" => OracleMatrix {
            configs: vec![("fleet-respawn".to_string(), r2c_core::R2cConfig::full(0))],
            machines: vec![MachineKind::EpycRome],
            build_seeds: vec![1, 2],
        },
        name => {
            let cfg = named_configs()
                .into_iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| {
                    let known: Vec<String> = named_configs().into_iter().map(|(n, _)| n).collect();
                    panic!("unknown preset {name:?}; known: quick, full, {known:?}")
                })
                .1;
            OracleMatrix {
                configs: vec![(name.to_string(), cfg)],
                machines: vec![MachineKind::EpycRome],
                build_seeds: vec![1, 2],
            }
        }
    }
}

/// Replays persisted divergence reproducers; returns the names of any
/// that still diverge.
fn replay_divergences(div_dir: &PathBuf, matrix: &OracleMatrix) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(div_dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "r2cir"))
        .collect();
    paths.sort();
    let mut still_diverging = Vec::new();
    for p in &paths {
        let src = std::fs::read_to_string(p).expect("read reproducer file");
        let module = match r2c_ir::parse_module(&src) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("reproducer {:?}: unparsable ({e:?}); skipping", p);
                continue;
            }
        };
        if let CaseVerdict::Diverged(divs) = run_oracle(&module, matrix) {
            eprintln!(
                "reproducer {:?} STILL diverges: {}",
                p,
                summarize_divergences(&divs)
            );
            for div in &divs {
                for d in &div.details {
                    eprintln!("    [{}] {d}", div.cell.config_name);
                }
            }
            still_diverging.push(p.display().to_string());
        }
    }
    if !paths.is_empty() {
        println!(
            "divergence corpus: replayed {} reproducer(s), {} still diverging",
            paths.len(),
            still_diverging.len()
        );
    }
    still_diverging
}

/// Reduces and persists one diverging case; returns the reproducer
/// path.
fn persist_divergence(
    div_dir: &PathBuf,
    case_seed: u64,
    module: &Module,
    divs: &[Divergence],
) -> PathBuf {
    let div = &divs[0];
    eprintln!(
        "case seed {case_seed}: DIVERGENCE — {}",
        summarize_divergences(divs)
    );
    for d in &div.details {
        eprintln!("    {d}");
    }
    eprintln!("  reducing (against cell {})…", div.cell.config_name);
    let reduced = reduce_divergence(module, div, 8);
    eprintln!(
        "  reduced to {} function(s), {} block(s) ({} candidate(s), {} accepted)",
        reduced.module.funcs.len(),
        reduced
            .module
            .funcs
            .iter()
            .map(|f| f.blocks.len())
            .sum::<usize>(),
        reduced.stats.candidates,
        reduced.stats.accepted,
    );
    let report = divergence_report(case_seed, div, &reduced.module);
    std::fs::create_dir_all(div_dir).expect("create divergence dir");
    let path = div_dir.join(format!(
        "div-case{case_seed}-{}-s{}.r2cir",
        div.cell.config_name, div.cell.build_seed
    ));
    std::fs::write(&path, report).expect("write reproducer");
    eprintln!("  reproducer: {}", path.display());
    path
}

fn run_campaign_mode(args: &Args, matrix: OracleMatrix) -> ExitCode {
    let mut corpus = Corpus::load(&args.corpus);
    println!(
        "campaign: {} case(s) from seed {}, preset {:?}, corpus {:?} ({} seed entr{})",
        args.cases,
        args.seed,
        args.preset,
        args.corpus,
        corpus.entries.len(),
        if corpus.entries.len() == 1 {
            "y"
        } else {
            "ies"
        },
    );
    let cfg = r2c_fuzz::CampaignConfig {
        cases: args.cases,
        base_seed: args.seed,
        guided: !args.blind,
        matrix,
        coverage_build_seed: 1,
        mutate_ratio: args.mutate_ratio,
        fresh_gen: None,
        minimize: args.minimize,
        stop_on_divergence: false,
        corpus_dir: Some(args.corpus.clone()),
        wall_clock_limit: args.time_budget.map(std::time::Duration::from_secs),
    };
    let report = r2c_fuzz::run_campaign(&cfg, &mut corpus);

    for rec in &report.divergences {
        persist_divergence(
            &args.div_dir,
            args.seed.wrapping_add(rec.case_index),
            &rec.module,
            &rec.divergences,
        );
    }

    if args.refresh {
        let dropped = corpus
            .refresh(cfg.coverage_build_seed, Some(&args.corpus))
            .expect("corpus refresh");
        println!(
            "refresh: dropped {} subsumed entr{}{}",
            dropped.len(),
            if dropped.len() == 1 { "y" } else { "ies" },
            if dropped.is_empty() {
                String::new()
            } else {
                format!(" ({})", dropped.join(", "))
            }
        );
    }

    if let Some(p) = &args.coverage_json {
        std::fs::write(p, report.to_json()).expect("write coverage JSON");
        println!("coverage report: {}", p.display());
    }

    let mut baseline_regressed = false;
    if let Some(p) = &args.baseline {
        if args.write_baseline {
            std::fs::write(p, format!("{}\n", report.seed_corpus_population))
                .expect("write baseline");
            println!(
                "baseline {} <- {}",
                p.display(),
                report.seed_corpus_population
            );
        } else {
            let floor: u64 = std::fs::read_to_string(p)
                .expect("read baseline")
                .trim()
                .parse()
                .expect("baseline: integer");
            if report.seed_corpus_population < floor {
                eprintln!(
                    "COVERAGE REGRESSION: seed corpus population {} < baseline {}",
                    report.seed_corpus_population, floor
                );
                baseline_regressed = true;
            } else {
                println!(
                    "baseline ok: seed corpus population {} >= {}",
                    report.seed_corpus_population, floor
                );
            }
        }
    }

    let t = TablePrinter::new(&[22, 10]);
    t.sep();
    t.row(&["cases run".into(), report.cases_run.to_string()]);
    t.row(&["passed".into(), report.passed.to_string()]);
    t.row(&["skipped".into(), report.skipped.to_string()]);
    t.row(&["mutated".into(), report.mutated_cases.to_string()]);
    t.row(&["diverged".into(), report.divergences.len().to_string()]);
    t.row(&["admitted".into(), report.admitted.to_string()]);
    t.row(&[
        "seed population".into(),
        report.seed_corpus_population.to_string(),
    ]);
    t.row(&["final population".into(), report.population.to_string()]);
    t.sep();

    if !report.divergences.is_empty() || report.skipped > 0 || baseline_regressed {
        ExitCode::FAILURE
    } else {
        println!("ok: no divergences, coverage {} bits", report.population);
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let matrix = matrix_for(&args.preset);
    if args.campaign {
        return run_campaign_mode(&args, matrix);
    }
    let cells_per_case = matrix.cells().len();
    println!(
        "r2c-fuzz: {} case(s) from seed {}, preset {:?} ({} variant cell(s) per case)",
        args.cases, args.seed, args.preset, cells_per_case
    );

    let replay_failures = replay_divergences(&args.div_dir, &matrix);

    let case_seeds: Vec<u64> = (0..args.cases).map(|i| args.seed + i).collect();
    let reports = parallel_map(&case_seeds, |&s| run_case(s, &matrix));

    let mut passed = 0u64;
    let mut skipped = 0u64;
    let mut divergences = Vec::new();
    for (module, report) in reports {
        match report.verdict {
            CaseVerdict::Pass { .. } => passed += 1,
            CaseVerdict::Skipped { reason } => {
                skipped += 1;
                eprintln!(
                    "case seed {}: skipped ({reason}) — generator bug, please report",
                    report.case_seed
                );
            }
            CaseVerdict::Diverged(divs) => divergences.push((report.case_seed, module, divs)),
        }
    }

    for (case_seed, module, divs) in &divergences {
        persist_divergence(&args.div_dir, *case_seed, module, divs);
    }

    let t = TablePrinter::new(&[14, 10]);
    t.sep();
    t.row(&["cases".into(), args.cases.to_string()]);
    t.row(&["passed".into(), passed.to_string()]);
    t.row(&["skipped".into(), skipped.to_string()]);
    t.row(&["diverged".into(), divergences.len().to_string()]);
    t.row(&[
        "variant runs".into(),
        (passed as usize * cells_per_case).to_string(),
    ]);
    t.sep();

    if !divergences.is_empty() || !replay_failures.is_empty() || skipped > 0 {
        ExitCode::FAILURE
    } else {
        println!("ok: no divergences");
        ExitCode::SUCCESS
    }
}
