//! Differential fuzzing campaign driver (`r2c-fuzz` front end).
//!
//! Generates structure-aware IR modules and pushes each through the
//! differential oracle: reference interpretation vs compiled +
//! diversified execution across a configuration matrix, with
//! `r2c-check` forced on. Divergences are minimized by the delta
//! reducer and persisted as `.r2cir` reproducers in the corpus
//! directory, which is replayed at the start of every later campaign.
//!
//! ```text
//! cargo run --release -p r2c-bench --bin fuzz -- \
//!     --cases 500 --seed 1 [--preset quick|full|<config-name>] \
//!     [--corpus DIR]
//! ```
//!
//! * `--cases N`  — number of generated cases (default 200; 0 is a
//!   valid smoke value: only the corpus is replayed).
//! * `--seed S`   — base case seed; case `i` uses seed `S + i`
//!   (default 1).
//! * `--preset P` — oracle matrix: `quick` (default), `full`, or one
//!   named build config (e.g. `full-push`, `comp-BTDP`).
//! * `--corpus D` — reproducer directory (default `fuzz-corpus`).
//!
//! Exits non-zero if any case (generated or replayed) diverges.

use std::path::PathBuf;
use std::process::ExitCode;

use r2c_bench::{parallel_map, TablePrinter};
use r2c_fuzz::{
    divergence_report, named_configs, reduce_divergence, run_case, run_oracle, CaseVerdict,
    OracleMatrix,
};
use r2c_vm::MachineKind;

struct Args {
    cases: u64,
    seed: u64,
    preset: String,
    corpus: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        cases: 200,
        seed: 1,
        preset: "quick".to_string(),
        corpus: PathBuf::from("fuzz-corpus"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--cases" => args.cases = val("--cases").parse().expect("--cases: integer"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed: integer"),
            "--preset" => args.preset = val("--preset"),
            "--corpus" => args.corpus = PathBuf::from(val("--corpus")),
            other => panic!("unknown argument {other:?} (try --cases/--seed/--preset/--corpus)"),
        }
    }
    args
}

fn matrix_for(preset: &str) -> OracleMatrix {
    match preset {
        "quick" => OracleMatrix::quick(),
        "full" => OracleMatrix::full(),
        // Fleet determinism cell only (serial vs parallel r2c-serve).
        "fleet-respawn" => OracleMatrix {
            configs: vec![("fleet-respawn".to_string(), r2c_core::R2cConfig::full(0))],
            machines: vec![MachineKind::EpycRome],
            build_seeds: vec![1, 2],
        },
        name => {
            let cfg = named_configs()
                .into_iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| {
                    let known: Vec<String> = named_configs().into_iter().map(|(n, _)| n).collect();
                    panic!("unknown preset {name:?}; known: quick, full, {known:?}")
                })
                .1;
            OracleMatrix {
                configs: vec![(name.to_string(), cfg)],
                machines: vec![MachineKind::EpycRome],
                build_seeds: vec![1, 2],
            }
        }
    }
}

/// Replays persisted reproducers; returns the names of any that still
/// diverge.
fn replay_corpus(corpus: &PathBuf, matrix: &OracleMatrix) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(corpus) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "r2cir"))
        .collect();
    paths.sort();
    let mut still_diverging = Vec::new();
    for p in &paths {
        let src = std::fs::read_to_string(p).expect("read corpus file");
        let module = match r2c_ir::parse_module(&src) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("corpus {:?}: unparsable ({e:?}); skipping", p);
                continue;
            }
        };
        if let CaseVerdict::Diverged(div) = run_oracle(&module, matrix) {
            eprintln!(
                "corpus {:?} STILL diverges in {} (build seed {}, {:?}):",
                p, div.cell.config_name, div.cell.build_seed, div.cell.machine
            );
            for d in &div.details {
                eprintln!("    {d}");
            }
            still_diverging.push(p.display().to_string());
        }
    }
    if !paths.is_empty() {
        println!(
            "corpus: replayed {} reproducer(s), {} still diverging",
            paths.len(),
            still_diverging.len()
        );
    }
    still_diverging
}

fn main() -> ExitCode {
    let args = parse_args();
    let matrix = matrix_for(&args.preset);
    let cells_per_case = matrix.cells().len();
    println!(
        "r2c-fuzz: {} case(s) from seed {}, preset {:?} ({} variant cell(s) per case)",
        args.cases, args.seed, args.preset, cells_per_case
    );

    let corpus_failures = replay_corpus(&args.corpus, &matrix);

    let case_seeds: Vec<u64> = (0..args.cases).map(|i| args.seed + i).collect();
    let reports = parallel_map(&case_seeds, |&s| run_case(s, &matrix));

    let mut passed = 0u64;
    let mut skipped = 0u64;
    let mut divergences = Vec::new();
    for (module, report) in reports {
        match report.verdict {
            CaseVerdict::Pass { .. } => passed += 1,
            CaseVerdict::Skipped { reason } => {
                skipped += 1;
                eprintln!(
                    "case seed {}: skipped ({reason}) — generator bug, please report",
                    report.case_seed
                );
            }
            CaseVerdict::Diverged(div) => divergences.push((report.case_seed, module, div)),
        }
    }

    for (case_seed, module, div) in &divergences {
        eprintln!(
            "case seed {case_seed}: DIVERGENCE in {} (build seed {}, {:?})",
            div.cell.config_name, div.cell.build_seed, div.cell.machine
        );
        for d in &div.details {
            eprintln!("    {d}");
        }
        eprintln!("  reducing…");
        let reduced = reduce_divergence(module, div, 8);
        eprintln!(
            "  reduced to {} function(s), {} block(s) ({} candidate(s), {} accepted)",
            reduced.module.funcs.len(),
            reduced
                .module
                .funcs
                .iter()
                .map(|f| f.blocks.len())
                .sum::<usize>(),
            reduced.stats.candidates,
            reduced.stats.accepted,
        );
        let report = divergence_report(*case_seed, div, &reduced.module);
        std::fs::create_dir_all(&args.corpus).expect("create corpus dir");
        let path = args.corpus.join(format!(
            "div-case{case_seed}-{}-s{}.r2cir",
            div.cell.config_name, div.cell.build_seed
        ));
        std::fs::write(&path, report).expect("write reproducer");
        eprintln!("  reproducer: {}", path.display());
    }

    let t = TablePrinter::new(&[14, 10]);
    t.sep();
    t.row(&["cases".into(), args.cases.to_string()]);
    t.row(&["passed".into(), passed.to_string()]);
    t.row(&["skipped".into(), skipped.to_string()]);
    t.row(&["diverged".into(), divergences.len().to_string()]);
    t.row(&[
        "variant runs".into(),
        (passed as usize * cells_per_case).to_string(),
    ]);
    t.sep();

    if !divergences.is_empty() || !corpus_failures.is_empty() || skipped > 0 {
        ExitCode::FAILURE
    } else {
        println!("ok: no divergences");
        ExitCode::SUCCESS
    }
}
