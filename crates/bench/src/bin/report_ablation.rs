//! Ablation study of R²C's main design parameters (beyond the paper's
//! tables, supporting the §7.1/§7.2 trade-off discussion):
//!
//! * **BTRA count R** — performance cost vs the 1/(R+1) guessing bound,
//!   including the paper's AVX-512 remark (§7.1: with 512-bit moves one
//!   could "either halve the BTRA performance impact, or use twice as
//!   many BTRAs" — i.e. security scales with R at a cost that scales
//!   with the number of vector moves).
//! * **BTDPs per function** — heap-harvest dilution vs cost.
//! * **Booby-trap density** — Blind-ROP probes-to-detection vs text
//!   size.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use r2c_attacks::victim::{build_victim, run_victim};
use r2c_bench::{baseline_cycles, median_cycles, parallel_map, pct, TablePrinter};
use r2c_core::analysis::p_guess_return_address;
use r2c_core::{BtdpConfig, BtraConfig, BtraMode, R2cConfig};
use r2c_vm::MachineKind;
use r2c_workloads::{spec_workloads, Scale};

fn main() {
    let machine = MachineKind::EpycRome;
    let workloads = spec_workloads(Scale::Bench);
    let omnetpp = workloads.iter().find(|w| w.name == "omnetpp").unwrap();
    let base = baseline_cycles(&omnetpp.module, machine, 2, 1);

    println!("Ablation 1: BTRA count R (omnetpp-profile workload, AVX2 setup)\n");
    let t = TablePrinter::new(&[6, 10, 12, 16]);
    t.row(&[
        "R".into(),
        "overhead".into(),
        "P(guess RA)".into(),
        "P(4-chain)".into(),
    ]);
    t.sep();
    let totals = [2u8, 4, 6, 10, 16, 20];
    let rows = parallel_map(&totals, |&total| {
        let mut cfg = R2cConfig::full(0);
        cfg.diversify.btra = Some(BtraConfig {
            mode: BtraMode::Avx2,
            total,
            omit_vzeroupper: false,
        });
        let cycles = median_cycles(&omnetpp.module, cfg, machine, 2, 2);
        let p = p_guess_return_address(total as u32);
        vec![
            format!("{total}"),
            pct(cycles / base),
            format!("{p:.4}"),
            format!("{:.2e}", p.powi(4)),
        ]
    });
    for row in &rows {
        t.row(row);
    }
    println!("\n(§7.1: an AVX-512 setup doubles the BTRAs per vector move — compare");
    println!(" R=10 with R=20: the security bound squares while the cost roughly");
    println!(" doubles in moves; on AVX-512 hardware it would stay at R=10 cost.)\n");

    println!("Ablation 2: BTDPs per function (xalancbmk-profile workload)\n");
    let xalanc = workloads.iter().find(|w| w.name == "xalancbmk").unwrap();
    let xbase = baseline_cycles(&xalanc.module, machine, 2, 3);
    let t2 = TablePrinter::new(&[12, 10, 22]);
    t2.row(&[
        "max BTDP/fn".into(),
        "overhead".into(),
        "harvest detection rate".into(),
    ]);
    t2.sep();
    let densities = [0u8, 2, 5, 10];
    let rows2 = parallel_map(&densities, |&max_per_fn| {
        let mut cfg = R2cConfig::full(0);
        cfg.diversify.btdp = if max_per_fn == 0 {
            None
        } else {
            Some(BtdpConfig {
                max_per_fn,
                ..BtdpConfig::default()
            })
        };
        let cycles = median_cycles(&xalanc.module, cfg, machine, 2, 4);
        // Detection rate of the heap harvest against the victim. The
        // attack RNG is seeded per cell, so rows stay independent.
        let mut rng = SmallRng::seed_from_u64(5);
        let mut detected = 0;
        let trials = 16;
        for seed in 0..trials {
            let v = build_victim(cfg.with_seed(seed));
            let mut vm = run_victim(&v.image);
            let (out, _) = r2c_attacks::aocr::harvest_heap_pointer(&mut vm, &mut rng);
            if out.is_detected() {
                detected += 1;
            }
        }
        vec![
            format!("{max_per_fn}"),
            pct(cycles / xbase),
            format!("{detected}/{trials}"),
        ]
    });
    for row in &rows2 {
        t2.row(row);
    }

    println!("\nAblation 3: booby-trap function count vs Blind-ROP detection\n");
    let t3 = TablePrinter::new(&[12, 22, 22]);
    t3.row(&[
        "bt funcs".into(),
        "avg probes to detect".into(),
        "campaigns detected".into(),
    ]);
    t3.sep();
    let bt_counts = [8u16, 32, 64, 128];
    let rows3 = parallel_map(&bt_counts, |&bts| {
        let mut cfg = R2cConfig::full(0);
        cfg.diversify.booby_trap_funcs = bts;
        // Isolate the booby-trap-function contribution: without this,
        // prolog trap runs and call-site instrumentation catch the scan
        // on the first probes regardless of density.
        cfg.diversify.prolog_traps = None;
        cfg.diversify.nop_insertion = None;
        let mut detected = 0;
        let mut probes = Vec::new();
        let n = 5;
        for seed in 0..n {
            let v = build_victim(cfg.with_seed(seed));
            let r = r2c_attacks::blindrop::blind_rop(&v.image, 4000);
            if r.outcome == r2c_attacks::blindrop::BlindOutcome::Detected {
                detected += 1;
                probes.push(r.probes);
            }
        }
        let avg = if probes.is_empty() {
            f64::NAN
        } else {
            probes.iter().map(|&p| p as f64).sum::<f64>() / probes.len() as f64
        };
        vec![
            format!("{bts}"),
            format!("{avg:.0}"),
            format!("{detected}/{n}"),
        ]
    });
    for row in &rows3 {
        t3.row(row);
    }
}
