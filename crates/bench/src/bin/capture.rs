//! `capture` — drives the record-reduce-replay workload pipeline.
//!
//! ```text
//! capture --bless             # regenerate every checked-in artifact
//! capture --verify [--smoke]  # CI gate: re-reduce + replay everything
//! capture --census            # dynamic-pair census over all workloads
//! ```
//!
//! * `--bless` records, reduces and replay-verifies each workload
//!   archetype plus the webserver run, rewriting
//!   `crates/replay/workloads/*.r2cir`, the golden traces under
//!   `crates/replay/tests/traces/`, and the captured corpus entry in
//!   `crates/fuzz/corpus/`.
//! * `--verify` re-reduces the `cap-interp` golden from source and
//!   byte-compares it against the checked-in artifacts, then replays
//!   every checked-in workload across all four machine models with a
//!   per-machine three-way `ExecStats` identity check (fused vs
//!   `no_fuse` vs traced). Writes `BENCH_replay.json` and exits
//!   non-zero on any mismatch. `--smoke` restricts the replay sweep to
//!   one machine for the debug-build CI lane.
//! * `--census` runs the DESIGN.md §11 dynamic-pair census over the 12
//!   SPEC-profiled workloads *and* the captured workloads, printing
//!   per-pair counts and the fusion-catalogue coverage.

use std::path::{Path, PathBuf};

use r2c_bench::TablePrinter;
use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::Module;
use r2c_replay::{
    capture_pipeline, capture_pipeline_with_arrivals, default_env, record::schedule_arrivals,
    source, sources, verify_trace, Captured, CapturedTrace, RecordConfig, ReplayStub,
};
use r2c_serve::Schedule;
use r2c_vm::{ExecStats, ExitStatus, MachineKind, PairCensus, TraceConfig, Vm, VmConfig};
use r2c_workloads::{captured_workloads, spec_workloads, Scale, ServerKind};

/// Webserver requests in the recorded run (kept small: the captured
/// module replays in every debug-mode suite).
const WEBSRV_REQUESTS: u64 = 24;
/// Delta-debugging rounds for the archetype sources.
const REDUCE_ROUNDS: usize = 3;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn workload_path(name: &str) -> PathBuf {
    repo_root().join(format!("crates/replay/workloads/{name}.r2cir"))
}

fn trace_path(name: &str) -> PathBuf {
    repo_root().join(format!("crates/replay/tests/traces/{name}.r2ct"))
}

/// Builds all five captures from their sources (the bless/verify
/// ground truth).
fn build_all() -> Vec<(String, Captured)> {
    let rc = RecordConfig::default();
    let mut out = Vec::new();
    for &a in sources::ALL {
        let m = source(a, &default_env(a));
        let cap = capture_pipeline(a.name(), &m, &rc, REDUCE_ROUNDS)
            .unwrap_or_else(|e| panic!("capture of {} failed: {e}", a.name()));
        out.push((a.name().to_string(), cap));
    }
    // The webserver capture: an open-loop schedule contributes arrival
    // ops; its handler table holds code pointers, so the
    // interpreter-globals oracle does not apply and reduction is
    // skipped (reduce_rounds = 0).
    let ws = r2c_workloads::webserver_module(ServerKind::Nginx, WEBSRV_REQUESTS);
    let sched = Schedule::generate_open_loop(7, 1, WEBSRV_REQUESTS as usize, 0, 2_000);
    let arrivals = schedule_arrivals(&sched);
    let cap =
        capture_pipeline_with_arrivals("cap-websrv", &ws, &RecordConfig::default(), 0, &arrivals)
            .unwrap_or_else(|e| panic!("capture of cap-websrv failed: {e}"));
    out.push(("cap-websrv".to_string(), cap));
    out
}

fn bless() {
    for (name, cap) in build_all() {
        let file = r2c_replay::workload_file(&cap, &name);
        std::fs::write(workload_path(&name), &file).expect("write workload");
        std::fs::write(trace_path(&name), cap.trace.encode()).expect("write trace");
        println!(
            "blessed {name}: {} ops ({} expanded), {} insns, {} funcs ({} reduced away)",
            cap.trace.ops.len(),
            cap.trace.expanded_len(),
            cap.trace.summary.instructions,
            cap.module.funcs.len(),
            cap.reduced_away
        );
        if name == "cap-churn" {
            // Admit the captured program to the fuzz corpus so the
            // mutation engine evolves it like any other entry.
            let entry = format!(
                "# r2c-fuzz corpus entry\n# energy: 4\n{}",
                r2c_ir::print_module(&cap.module)
            );
            let path = repo_root().join("crates/fuzz/corpus/captured-churn.r2cir");
            std::fs::write(path, entry).expect("write corpus entry");
            println!("blessed crates/fuzz/corpus/captured-churn.r2cir");
        }
    }
}

/// One three-way replay of `module` on `machine`: fused, unfused, and
/// traced stats must be identical, and the run must exit cleanly.
fn replay_three_way(module: &Module, machine: MachineKind) -> Result<ExecStats, String> {
    let image = R2cCompiler::new(R2cConfig::baseline(0))
        .build(module)
        .map_err(|e| format!("build: {e:?}"))?;
    let run = |no_fuse: bool, traced: bool| -> Result<(ExecStats, i64, Vec<i64>), String> {
        let mut cfg = VmConfig::new(machine.config());
        cfg.no_fuse = no_fuse;
        let mut vm = Vm::new(&image, cfg);
        if traced {
            vm.enable_trace(&image, TraceConfig::default());
        }
        let out = vm.run();
        match out.status {
            ExitStatus::Exited(code) => Ok((out.stats, code, vm.output.clone())),
            other => Err(format!("did not exit: {other:?}")),
        }
    };
    let fused = run(false, false)?;
    let unfused = run(true, false)?;
    let traced = run(false, true)?;
    if fused != unfused || fused != traced {
        return Err(format!(
            "{machine:?}: three-way stats diverge\n  fused:   {:?}\n  unfused: {:?}\n  traced:  {:?}",
            fused, unfused, traced
        ));
    }
    Ok(fused.0)
}

fn verify(smoke: bool) {
    let mut failures: Vec<String> = Vec::new();
    let mut report = String::from("{\n  \"workloads\": [\n");

    // 1. Re-reduce the cap-interp golden from source; the pipeline is
    // deterministic, so the artifact bytes must match exactly.
    let rc = RecordConfig::default();
    let a = sources::Archetype::Interp;
    let m = source(a, &default_env(a));
    match capture_pipeline(a.name(), &m, &rc, REDUCE_ROUNDS) {
        Ok(cap) => {
            let fresh = r2c_replay::workload_file(&cap, a.name());
            let on_disk = std::fs::read_to_string(workload_path(a.name())).unwrap_or_default();
            if fresh != on_disk {
                failures.push(
                    "cap-interp re-reduction differs from checked-in workload (run `capture --bless`)"
                        .into(),
                );
            }
            let golden = std::fs::read(trace_path(a.name())).unwrap_or_default();
            if cap.trace.encode() != golden {
                failures.push(
                    "cap-interp re-recorded trace differs from golden .r2ct (run `capture --bless`)"
                        .into(),
                );
            } else {
                println!(
                    "golden re-reduction: cap-interp ok ({} ops)",
                    cap.trace.ops.len()
                );
            }
        }
        Err(e) => failures.push(format!("cap-interp re-reduction failed: {e}")),
    }

    // 2. Replay every checked-in workload: golden trace replays
    // bit-exactly under the record config, and ExecStats are
    // three-way-identical per machine.
    let machines: &[MachineKind] = if smoke {
        &[MachineKind::EpycRome]
    } else {
        &MachineKind::ALL
    };
    for (i, w) in captured_workloads().iter().enumerate() {
        let golden = std::fs::read(trace_path(w.name)).unwrap_or_default();
        match CapturedTrace::decode(&golden) {
            Ok(trace) => {
                if let Err(errs) = verify_trace(&trace, &w.module, &rc) {
                    failures.push(format!(
                        "{}: golden trace does not replay: {}",
                        w.name, errs[0]
                    ));
                }
                let _ = ReplayStub::from_trace(&trace);
            }
            Err(e) => failures.push(format!("{}: golden trace unreadable: {e}", w.name)),
        }
        let mut per_machine = Vec::new();
        for &mk in machines {
            match replay_three_way(&w.module, mk) {
                Ok(stats) => per_machine.push((mk, stats)),
                Err(e) => failures.push(format!("{}: {e}", w.name)),
            }
        }
        if let Some((mk, stats)) = per_machine.first() {
            println!(
                "replayed {}: {} insns, {} cycles on {:?} ({} machines, three-way identical)",
                w.name,
                stats.instructions,
                stats.cycles,
                mk,
                per_machine.len()
            );
            report.push_str(&format!(
                "    {{\"name\": \"{}\", \"machines\": {}, \"instructions\": {}, \"calls\": {}}}{}\n",
                w.name,
                per_machine.len(),
                stats.instructions,
                stats.calls,
                if i + 1 < 5 { "," } else { "" }
            ));
        }
    }
    report.push_str(&format!(
        "  ],\n  \"smoke\": {},\n  \"failures\": {}\n}}\n",
        smoke,
        failures.len()
    ));
    std::fs::write("BENCH_replay.json", report).expect("write BENCH_replay.json");

    if !failures.is_empty() {
        eprintln!("capture --verify FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!(
        "capture --verify ok ({} machines per workload)",
        machines.len()
    );
}

/// Runs a module under the census tracer, folding its executed
/// adjacent-pair counts into `total`.
fn census_run(module: &Module, total: &mut Option<PairCensus>) -> (u64, f64) {
    let image = R2cCompiler::new(R2cConfig::baseline(0))
        .build(module)
        .expect("build");
    let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
    vm.enable_trace(&image, TraceConfig::default());
    vm.tracer_mut().unwrap().enable_pair_census(&image);
    let out = vm.run();
    assert!(matches!(out.status, ExitStatus::Exited(_)));
    let census = vm.pair_census().expect("census enabled").clone();
    let pairs = census.total_pairs();
    let cov = census.coverage();
    match total {
        Some(t) => t.merge(&census),
        None => *total = Some(census),
    }
    (pairs, cov)
}

fn census() {
    println!("Dynamic adjacent-pair census (DESIGN.md §11 / §14)\n");
    let t = TablePrinter::new(&[12, 16, 10]);
    t.row(&[
        "workload".into(),
        "adjacent pairs".into(),
        "coverage".into(),
    ]);
    t.sep();
    let mut total: Option<PairCensus> = None;
    for w in spec_workloads(Scale::Test) {
        let (pairs, cov) = census_run(&w.module, &mut total);
        t.row(&[
            w.name.into(),
            pairs.to_string(),
            format!("{:.1}%", cov * 100.0),
        ]);
    }
    for w in captured_workloads() {
        let (pairs, cov) = census_run(&w.module, &mut total);
        t.row(&[
            w.name.into(),
            pairs.to_string(),
            format!("{:.1}%", cov * 100.0),
        ]);
    }
    let total = total.expect("at least one workload");
    println!(
        "\naggregate: {} executed adjacent pairs, {} covered by the 15-pair catalogue ({:.1}%)",
        total.total_pairs(),
        total.covered_pairs(),
        total.coverage() * 100.0
    );
    println!("\ntop pairs (catalogue membership marked *):");
    for (name, count, in_catalogue) in total.rows().into_iter().take(12) {
        println!(
            "  {:>12}  {}{}",
            count,
            name,
            if in_catalogue { "  *" } else { "" }
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    match () {
        _ if has("--bless") => bless(),
        _ if has("--verify") => verify(has("--smoke")),
        _ if has("--census") => census(),
        _ => {
            eprintln!("usage: capture --bless | --verify [--smoke] | --census");
            std::process::exit(2);
        }
    }
}
