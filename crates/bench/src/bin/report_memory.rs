//! Regenerates the **§6.2.5 memory-overhead measurement**: maximum
//! resident set size of the SPEC-like workloads and the web servers
//! under full R²C versus baseline, with the BTDP guard-page share
//! broken out.
//!
//! Paper: SPEC memory overhead 1–3%; web servers ≈ 100%, of which
//! about 55% stems from BTDP page allocations (the rest from BTRA
//! arrays and the larger binary).

use r2c_bench::{measure_once, parallel_map, TablePrinter};
use r2c_core::{R2cCompiler, R2cConfig};
use r2c_vm::{ExitStatus, MachineKind, Vm, VmConfig, PAGE_SIZE};
use r2c_workloads::{
    captured_workloads, spec_workloads, webserver::run_webserver, Scale, ServerKind,
};

/// End-of-run residency of one server build: (total resident pages,
/// resident pages within the heap region). Distinct from maxrss: freed
/// BTDP pool pages peak in maxrss but are released again, so only the
/// kept guard chunks and live data stay resident.
fn steady_state(kind: ServerKind, cfg: R2cConfig, machine: MachineKind) -> (usize, usize) {
    let module = r2c_workloads::webserver_module(kind, 2_000);
    let image = R2cCompiler::new(cfg).build(&module).expect("compile");
    let mut vm = Vm::new(&image, VmConfig::new(machine.config()));
    let out = vm.run();
    assert!(matches!(out.status, ExitStatus::Exited(_)));
    let heap = vm
        .mem
        .resident_pages_in(image.layout.heap_base, image.layout.heap_size);
    (vm.mem.resident_pages(), heap)
}

fn main() {
    let scale = if std::env::args().any(|a| a == "--large") {
        Scale::Large
    } else {
        Scale::Bench
    };
    let machine = MachineKind::I9_9900K;

    println!("Memory overhead (maxrss, paper §6.2.5)\n");
    let t = TablePrinter::new(&[11, 14, 14, 10]);
    t.row(&[
        "benchmark".into(),
        "baseline rss".into(),
        "R2C rss".into(),
        "overhead".into(),
    ]);
    t.sep();
    let mut workloads = spec_workloads(scale);
    // The replay-captured workloads (`cap-*`) ride along: standalone
    // programs minted by `capture --bless` from recorded traces.
    workloads.extend(captured_workloads());
    let rss_pairs = parallel_map(&workloads, |w| {
        let base = measure_once(&w.module, R2cConfig::baseline(0), machine, 1);
        let prot = measure_once(&w.module, R2cConfig::full(0), machine, 1);
        (base.stats.max_rss_bytes(), prot.stats.max_rss_bytes())
    });
    let mut ratios = Vec::new();
    for (w, &(b, p)) in workloads.iter().zip(&rss_pairs) {
        ratios.push(p as f64 / b as f64);
        t.row(&[
            w.name.into(),
            format!("{} KiB", b / 1024),
            format!("{} KiB", p / 1024),
            format!("+{:.1}%", 100.0 * (p as f64 / b as f64 - 1.0)),
        ]);
    }
    t.sep();
    let geo = r2c_bench::geomean(&ratios);
    t.row(&[
        "geomean".into(),
        String::new(),
        String::new(),
        format!("+{:.1}%", 100.0 * (geo - 1.0)),
    ]);
    println!("\npaper: SPEC memory overhead 1-3%\n");

    println!("Webserver memory overhead:\n");
    let t2 = TablePrinter::new(&[8, 14, 14, 12, 18]);
    t2.row(&[
        "server".into(),
        "baseline rss".into(),
        "R2C rss".into(),
        "overhead".into(),
        "BTDP guard share".into(),
    ]);
    t2.sep();
    let kinds = [ServerKind::Nginx, ServerKind::Apache];
    let server_pairs = parallel_map(&kinds, |&kind| {
        let base = run_webserver(kind, 2_000, R2cConfig::baseline(1), machine);
        let prot = run_webserver(kind, 2_000, R2cConfig::full(1), machine);
        (base, prot)
    });
    for (&kind, (base, prot)) in kinds.iter().zip(&server_pairs) {
        // Guard-page contribution to the *peak*: the whole pool the
        // BTDP constructor cycles through is mapped at once before the
        // non-kept chunks are freed, so maxrss carries all pool pages
        // (the paper verified experimentally that ~55% of the overhead
        // came from these allocations). The freed remainder is released
        // again — see the steady-state table below.
        let btdp_cfg = R2cConfig::full(1).diversify.btdp.unwrap();
        let guard_bytes = btdp_cfg.pool_pages as u64 * PAGE_SIZE;
        let delta = prot.max_rss_bytes.saturating_sub(base.max_rss_bytes).max(1);
        let share = 100.0 * guard_bytes as f64 / delta as f64;
        t2.row(&[
            kind.name().into(),
            format!("{} KiB", base.max_rss_bytes / 1024),
            format!("{} KiB", prot.max_rss_bytes / 1024),
            format!(
                "+{:.0}%",
                100.0 * (prot.max_rss_bytes as f64 / base.max_rss_bytes as f64 - 1.0)
            ),
            format!("{share:.0}% of delta"),
        ]);
    }
    println!("\npaper: webserver memory overhead ~100%, ~55% of it from BTDP guard pages.");

    // Steady state: with the heap releasing wholly-freed pages, only
    // the kept guard chunks (plus the small quarantine) and live data
    // stay resident once the constructor has freed the rest of the
    // pool. Before the page-lifetime fix every pool page stayed
    // resident forever and this table equalled the peak.
    println!("\nSteady-state residency (end of run, not maxrss):\n");
    let t3 = TablePrinter::new(&[8, 16, 16, 17, 14]);
    t3.row(&[
        "server".into(),
        "baseline pages".into(),
        "R2C pages".into(),
        "R2C heap pages".into(),
        "kept guards".into(),
    ]);
    t3.sep();
    let steady = parallel_map(&kinds, |&kind| {
        let base = steady_state(kind, R2cConfig::baseline(1), machine);
        let prot = steady_state(kind, R2cConfig::full(1), machine);
        (base, prot)
    });
    let btdp_cfg = R2cConfig::full(1).diversify.btdp.unwrap();
    for (&kind, &((base_total, _), (prot_total, prot_heap))) in kinds.iter().zip(&steady) {
        t3.row(&[
            kind.name().into(),
            format!("{base_total}"),
            format!("{prot_total}"),
            format!("{prot_heap}"),
            format!("{}", btdp_cfg.kept_pages),
        ]);
    }
    println!(
        "\nfreed BTDP pool pages ({} of {}) are released after the constructor;\n\
         steady-state residency tracks live data + kept guards, not the pool peak.",
        btdp_cfg.pool_pages - btdp_cfg.kept_pages,
        btdp_cfg.pool_pages
    );
}
