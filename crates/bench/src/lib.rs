//! # r2c-bench — the benchmark harness regenerating every table and figure
//!
//! The paper's evaluation artifacts and the binaries that regenerate
//! them (all built by this crate; run with `cargo run --release -p
//! r2c-bench --bin <name>`):
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table 1 (component overheads, incl. the §6.2.1 OIA row) | `report_table1` |
//! | Table 2 (dynamic call frequencies) | `report_table2` |
//! | Table 3 (defense comparison) | `report_table3` |
//! | Figure 6 (full R²C overhead, 4 machines) | `report_fig6` |
//! | §6.2.4 (web-server throughput) | `report_webserver` |
//! | §6.2.5 (memory overhead) | `report_memory` |
//! | §7.2 (security: attack matrix + probabilities) | `report_security` |
//! | §6.3 (scalability) | `report_scale` |
//!
//! Methodology follows the paper (§6.2): per measurement the program is
//! *recompiled with a fresh seed* (the location of return addresses and
//! the distribution of BTDPs is random per build) and the median across
//! runs is reported; the baseline is the same compiler with R²C
//! disabled. Overheads are ratios of simulated cycle counts under the
//! respective machine cost model.

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::Module;
use r2c_vm::{ExecStats, ExitStatus, MachineKind, Vm, VmConfig};

/// One measured run of a module under a configuration.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Simulated cycles.
    pub cycles: f64,
    /// Full execution statistics.
    pub stats: ExecStats,
}

/// Builds (with `seed`) and runs `module`, returning the measurement.
///
/// # Panics
///
/// Panics if the program fails to compile or crashes — a measurement on
/// a crashed run would be meaningless.
pub fn measure_once(
    module: &Module,
    cfg: R2cConfig,
    machine: MachineKind,
    seed: u64,
) -> Measurement {
    let image = R2cCompiler::new(cfg.with_seed(seed))
        .build(module)
        .expect("compile failed");
    let mut vm = Vm::new(&image, VmConfig::new(machine.config()));
    let out = vm.run();
    assert!(
        matches!(out.status, ExitStatus::Exited(_)),
        "benchmark run crashed: {:?}",
        out.status
    );
    Measurement {
        cycles: out.stats.cycles_f64(),
        stats: out.stats,
    }
}

/// Median cycles over `runs` executions, each recompiled with a fresh
/// seed derived from `seed_base` (the paper's per-execution reseeding).
pub fn median_cycles(
    module: &Module,
    cfg: R2cConfig,
    machine: MachineKind,
    runs: u32,
    seed_base: u64,
) -> f64 {
    let mut cycles: Vec<f64> = (0..runs)
        .map(|i| measure_once(module, cfg, machine, seed_base + 1 + i as u64).cycles)
        .collect();
    cycles.sort_by(|a, b| a.partial_cmp(b).unwrap());
    median_of_sorted(&cycles)
}

fn median_of_sorted(v: &[f64]) -> f64 {
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Overhead of `cfg` relative to the baseline configuration on the
/// same machine (1.00 = no overhead).
pub fn overhead(
    module: &Module,
    cfg: R2cConfig,
    machine: MachineKind,
    runs: u32,
    seed_base: u64,
) -> f64 {
    let base = median_cycles(module, R2cConfig::baseline(0), machine, runs, seed_base);
    let prot = median_cycles(module, cfg, machine, runs, seed_base ^ 0x5eed);
    prot / base
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    let s: f64 = xs.iter().map(|x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Formats a ratio as the paper's percentage overhead.
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Simple fixed-width table printer for the report binaries.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Creates a printer with the given column widths.
    pub fn new(widths: &[usize]) -> TablePrinter {
        TablePrinter {
            widths: widths.to_vec(),
        }
    }

    /// Prints one row.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(12);
            line.push_str(&format!("{cell:<w$}  "));
        }
        println!("{}", line.trim_end());
    }

    /// Prints a separator.
    pub fn sep(&self) {
        let total: usize = self.widths.iter().map(|w| w + 2).sum();
        println!("{}", "-".repeat(total));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_workloads::{spec_workloads, Scale};

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.06]) - 1.06).abs() < 1e-12);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(1.066), "+6.6%");
        assert_eq!(pct(0.97), "-3.0%");
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let w = &spec_workloads(Scale::Test)[3]; // lbm: small
        let a = measure_once(&w.module, R2cConfig::full(0), MachineKind::EpycRome, 7);
        let b = measure_once(&w.module, R2cConfig::full(0), MachineKind::EpycRome, 7);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn protected_costs_more_than_baseline() {
        let w = &spec_workloads(Scale::Test)[4]; // omnetpp: call-heavy
        let r = overhead(&w.module, R2cConfig::full(0), MachineKind::EpycRome, 3, 1);
        assert!(r > 1.0, "overhead ratio {r}");
    }
}
