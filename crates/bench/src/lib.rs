//! # r2c-bench — the benchmark harness regenerating every table and figure
//!
//! The paper's evaluation artifacts and the binaries that regenerate
//! them (all built by this crate; run with `cargo run --release -p
//! r2c-bench --bin <name>`):
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table 1 (component overheads, incl. the §6.2.1 OIA row) | `report_table1` |
//! | Table 2 (dynamic call frequencies) | `report_table2` |
//! | Table 3 (defense comparison) | `report_table3` |
//! | Figure 6 (full R²C overhead, 4 machines) | `report_fig6` |
//! | §6.2.4 (web-server throughput) | `report_webserver` |
//! | §6.2.5 (memory overhead) | `report_memory` |
//! | §7.2 (security: attack matrix + probabilities) | `report_security` |
//! | §6.3 (scalability) | `report_scale` |
//!
//! Methodology follows the paper (§6.2): per measurement the program is
//! *recompiled with a fresh seed* (the location of return addresses and
//! the distribution of BTDPs is random per build) and the median across
//! runs is reported; the baseline is the same compiler with R²C
//! disabled. Overheads are ratios of simulated cycle counts under the
//! respective machine cost model.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::Module;
use r2c_vm::{ExecStats, ExitStatus, MachineKind, Vm, VmConfig};

/// One measured run of a module under a configuration.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Simulated cycles.
    pub cycles: f64,
    /// Full execution statistics.
    pub stats: ExecStats,
}

/// Builds (with `seed`) and runs `module`, returning the measurement.
///
/// # Panics
///
/// Panics if the program fails to compile or crashes — a measurement on
/// a crashed run would be meaningless.
pub fn measure_once(
    module: &Module,
    cfg: R2cConfig,
    machine: MachineKind,
    seed: u64,
) -> Measurement {
    let image = R2cCompiler::new(cfg.with_seed(seed))
        .build(module)
        .expect("compile failed");
    let mut vm = Vm::new(&image, VmConfig::new(machine.config()));
    let out = vm.run();
    assert!(
        matches!(out.status, ExitStatus::Exited(_)),
        "benchmark run crashed: {:?}",
        out.status
    );
    Measurement {
        cycles: out.stats.cycles_f64(),
        stats: out.stats,
    }
}

/// Median cycles over `runs` executions, each recompiled with a fresh
/// seed derived from `seed_base` (the paper's per-execution reseeding).
pub fn median_cycles(
    module: &Module,
    cfg: R2cConfig,
    machine: MachineKind,
    runs: u32,
    seed_base: u64,
) -> f64 {
    let mut cycles: Vec<f64> = (0..runs)
        .map(|i| {
            let seed = seed_base + 1 + i as u64;
            let c = measure_once(module, cfg, machine, seed).cycles;
            // A NaN would previously surface as a bare unwrap panic deep
            // inside sort; name the offending cell instead.
            assert!(
                c.is_finite(),
                "non-finite cycle measurement {c} for (module {:?}, machine {machine:?}, seed {seed})",
                module.name
            );
            c
        })
        .collect();
    // total_cmp is a total order, so the sort itself can never panic
    // even if the finiteness net above is ever loosened.
    cycles.sort_by(f64::total_cmp);
    median_of_sorted(&cycles)
}

fn median_of_sorted(v: &[f64]) -> f64 {
    let n = v.len();
    assert!(
        n > 0,
        "median of zero measurements — was median_cycles called with runs == 0?"
    );
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Number of worker threads for [`parallel_map`]: the host's available
/// parallelism, overridable with `R2C_BENCH_THREADS` (set it to `1` to
/// force the serial path, e.g. when diffing against a serial run).
pub fn bench_threads() -> usize {
    if let Ok(v) = std::env::var("R2C_BENCH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, fanning the work out across
/// [`bench_threads`] scoped threads, and returns the results **in input
/// order**.
///
/// Measurement cells — (workload, machine, seed) triples — are
/// independent: each compiles its own image from an explicit seed and
/// runs it in a private [`Vm`], so execution order cannot influence any
/// simulated cycle count. Parallel results are therefore bit-identical
/// to a serial run; only host wall-clock changes.
///
/// If a worker panics (e.g. a measurement crashed), the panic is
/// propagated once all threads have finished, same as the serial path.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = bench_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let v = f(&items[i]);
                *slots[i].lock().unwrap() = Some(v);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker poisoned slot")
                .expect("scoped worker exited without storing a result")
        })
        .collect()
}

/// Key identifying one baseline measurement: which module, machine and
/// sampling parameters produced it. The module is identified by name
/// plus structural counts — modules generated by `r2c-workloads` have
/// unique names, and the counts guard against a name reused for a
/// structurally different module.
#[derive(Clone, Hash, PartialEq, Eq)]
struct BaselineKey {
    module_name: String,
    funcs: usize,
    insts: usize,
    globals: usize,
    machine: &'static str,
    runs: u32,
    seed_base: u64,
}

fn baseline_key(module: &Module, machine: MachineKind, runs: u32, seed_base: u64) -> BaselineKey {
    BaselineKey {
        module_name: module.name.clone(),
        funcs: module.funcs.len(),
        insts: module.funcs.iter().map(|f| f.inst_count()).sum(),
        globals: module.globals.len(),
        machine: machine.name(),
        runs,
        seed_base,
    }
}

fn baseline_cache() -> &'static Mutex<HashMap<BaselineKey, f64>> {
    static CACHE: OnceLock<Mutex<HashMap<BaselineKey, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Median baseline cycles, memoized per (module, machine, runs,
/// seed_base).
///
/// Report binaries compare many protected configurations against the
/// *same* baseline; recompiling and re-running it per comparison
/// dominated their wall-clock. The cached value is exactly what
/// [`median_cycles`] with [`R2cConfig::baseline`] returns for the same
/// arguments, so the memoization cannot change any reported number.
pub fn baseline_cycles(module: &Module, machine: MachineKind, runs: u32, seed_base: u64) -> f64 {
    let key = baseline_key(module, machine, runs, seed_base);
    if let Some(&cycles) = baseline_cache().lock().unwrap().get(&key) {
        return cycles;
    }
    // Measure outside the lock: baselines for different cells can and
    // should run in parallel under `parallel_map`.
    let cycles = median_cycles(module, R2cConfig::baseline(0), machine, runs, seed_base);
    baseline_cache().lock().unwrap().insert(key, cycles);
    cycles
}

/// Overhead of `cfg` relative to the baseline configuration on the
/// same machine (1.00 = no overhead).
pub fn overhead(
    module: &Module,
    cfg: R2cConfig,
    machine: MachineKind,
    runs: u32,
    seed_base: u64,
) -> f64 {
    let base = baseline_cycles(module, machine, runs, seed_base);
    let prot = median_cycles(module, cfg, machine, runs, seed_base ^ 0x5eed);
    prot / base
}

/// Geometric mean.
///
/// # Panics
///
/// Panics on an empty slice: `0.0 / 0` would otherwise yield a silent
/// `NaN` that propagates into report tables as `NaN%`.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(
        !xs.is_empty(),
        "geometric mean of zero values — empty workload or cell set?"
    );
    let s: f64 = xs.iter().map(|x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Formats a ratio as the paper's percentage overhead.
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Simple fixed-width table printer for the report binaries.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Creates a printer with the given column widths.
    pub fn new(widths: &[usize]) -> TablePrinter {
        TablePrinter {
            widths: widths.to_vec(),
        }
    }

    /// Prints one row.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(12);
            line.push_str(&format!("{cell:<w$}  "));
        }
        println!("{}", line.trim_end());
    }

    /// Prints a separator.
    pub fn sep(&self) {
        let total: usize = self.widths.iter().map(|w| w + 2).sum();
        println!("{}", "-".repeat(total));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_workloads::{spec_workloads, Scale};

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.06]) - 1.06).abs() < 1e-12);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(1.066), "+6.6%");
        assert_eq!(pct(0.97), "-3.0%");
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let w = &spec_workloads(Scale::Test)[3]; // lbm: small
        let a = measure_once(&w.module, R2cConfig::full(0), MachineKind::EpycRome, 7);
        let b = measure_once(&w.module, R2cConfig::full(0), MachineKind::EpycRome, 7);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn protected_costs_more_than_baseline() {
        let w = &spec_workloads(Scale::Test)[4]; // omnetpp: call-heavy
        let r = overhead(&w.module, R2cConfig::full(0), MachineKind::EpycRome, 3, 1);
        assert!(r > 1.0, "overhead ratio {r}");
    }

    #[test]
    #[should_panic(expected = "runs == 0")]
    fn median_of_zero_runs_panics_clearly() {
        median_of_sorted(&[]);
    }

    #[test]
    fn parallel_map_preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..57).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single_inputs() {
        // `--cases 0`-style degenerate inputs must not spawn threads,
        // divide by zero, or hang.
        let empty: Vec<u64> = vec![];
        assert_eq!(parallel_map(&empty, |&x| x), Vec::<u64>::new());
        assert_eq!(parallel_map(&[42u64], |&x| x + 1), vec![43]);
    }

    #[test]
    #[should_panic(expected = "zero values")]
    fn geomean_of_empty_slice_panics_clearly() {
        geomean(&[]);
    }

    /// The harness invariant: fanning measurement cells out across
    /// threads reproduces the serial cycle counts exactly.
    #[test]
    fn parallel_fanout_reproduces_serial_cycles_exactly() {
        let workloads = spec_workloads(Scale::Test);
        let cells: Vec<(usize, MachineKind, u64)> = (0..4)
            .flat_map(|wi| {
                MachineKind::ALL
                    .into_iter()
                    .map(move |m| (wi, m, 7 + wi as u64))
            })
            .collect();
        let measure = |&(wi, m, seed): &(usize, MachineKind, u64)| {
            measure_once(&workloads[wi].module, R2cConfig::full(0), m, seed).cycles
        };
        let serial: Vec<f64> = cells.iter().map(measure).collect();
        let parallel: Vec<f64> = parallel_map(&cells, measure);
        assert_eq!(serial, parallel);
    }

    /// Baseline memoization returns exactly what `median_cycles` with
    /// the baseline configuration returns, on repeated calls too.
    #[test]
    fn baseline_cache_is_transparent() {
        let w = &spec_workloads(Scale::Test)[3];
        let direct = median_cycles(
            &w.module,
            R2cConfig::baseline(0),
            MachineKind::Xeon8358,
            2,
            9,
        );
        let cached1 = baseline_cycles(&w.module, MachineKind::Xeon8358, 2, 9);
        let cached2 = baseline_cycles(&w.module, MachineKind::Xeon8358, 2, 9);
        assert_eq!(direct, cached1);
        assert_eq!(direct, cached2);
    }
}
