//! Golden security-regression suite (ISSUE: PR 5, satellite 1).
//!
//! The §7.2 attack matrix and the §4.1 Blind-ROP campaign stats are
//! recomputed from the shared [`r2c_attacks::matrix`] drivers and
//! compared against a checked-in golden file. The comparison policy:
//!
//! * **success counts are exact** — an attack that starts (or stops)
//!   succeeding against full R²C is a security regression, full stop;
//! * detected/crashed/failed splits get a bounded tolerance (±30%, min
//!   slack 2) — they shift when unrelated layout details move a wild
//!   probe from "crash" to "booby trap";
//! * Blind-ROP outcome counts are exact, probe counts get ±50% — the
//!   probes-to-detection distance is the probabilistic quantity §7.3
//!   reasons about.
//!
//! To re-record after an intentional change:
//! `R2C_BLESS=1 cargo test -p r2c-attacks --test security_golden`

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use r2c_attacks::matrix::{blind_rop_stats, matrix_cell, matrix_cells, MATRIX_ATTACKS};

/// Trials per matrix cell. Small compared to `report_security` (which
/// uses 40/120) to keep the suite quick; the golden file pins the exact
/// outcomes at this size.
const TRIALS: u64 = 10;
/// Blind-ROP campaigns per configuration and probe budget per campaign.
const CAMPAIGNS: u64 = 4;
const PROBE_BUDGET: u32 = 4000;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/security_golden.txt")
}

fn cfg_name(protected: bool) -> &'static str {
    if protected {
        "full"
    } else {
        "unprotected"
    }
}

/// Renders the current measurements in the golden format: one
/// whitespace-separated record per line, `key=value` fields.
fn render() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# r2c security golden v1 (trials={TRIALS} campaigns={CAMPAIGNS} budget={PROBE_BUDGET})"
    );
    // Fan the independent cells out across threads (the suite runs in
    // debug CI too); results are collected back in canonical order.
    let cells = matrix_cells();
    let tallies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .iter()
            .map(|&(attack, protected)| scope.spawn(move || matrix_cell(attack, protected, TRIALS)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for cell in &tallies {
        let t = cell.tally;
        let _ = writeln!(
            s,
            "matrix attack={} cfg={} success={} detected={} crashed={} failed={}",
            cell.attack.replace(' ', "_"),
            cfg_name(cell.protected),
            t.success,
            t.detected,
            t.crashed,
            t.failed
        );
    }
    let (base, full) = std::thread::scope(|scope| {
        let b = scope.spawn(|| blind_rop_stats(false, CAMPAIGNS, PROBE_BUDGET));
        let f = scope.spawn(|| blind_rop_stats(true, CAMPAIGNS, PROBE_BUDGET));
        (b.join().unwrap(), f.join().unwrap())
    });
    for (protected, stats) in [(false, base), (true, full)] {
        let _ = writeln!(
            s,
            "blindrop cfg={} success={} detected={} exhausted={} probes_success={} probes_detect={}",
            cfg_name(protected),
            stats.successes,
            stats.detected,
            stats.exhausted,
            join(&stats.probes_to_success),
            join(&stats.probes_to_detect)
        );
    }
    s
}

fn join(xs: &[u32]) -> String {
    if xs.is_empty() {
        "-".into()
    } else {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Parses a golden/rendered blob into `record-key -> field map`.
fn parse(blob: &str) -> BTreeMap<String, BTreeMap<String, String>> {
    let mut out = BTreeMap::new();
    for line in blob.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = BTreeMap::new();
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap().to_string();
        for p in parts {
            let (k, v) = p.split_once('=').unwrap_or_else(|| {
                panic!("malformed golden field {p:?} in line {line:?}");
            });
            fields.insert(k.to_string(), v.to_string());
        }
        let key = match kind.as_str() {
            "matrix" => format!("matrix/{}/{}", fields["attack"], fields["cfg"]),
            "blindrop" => format!("blindrop/{}", fields["cfg"]),
            other => panic!("unknown golden record kind {other:?}"),
        };
        out.insert(key, fields);
    }
    out
}

fn int(fields: &BTreeMap<String, String>, key: &str) -> i64 {
    fields[key].parse().unwrap()
}

fn probe_list(fields: &BTreeMap<String, String>, key: &str) -> Vec<i64> {
    let v = &fields[key];
    if v == "-" {
        Vec::new()
    } else {
        v.split(',').map(|x| x.parse().unwrap()).collect()
    }
}

/// `got` within ±30% of `want`, with a minimum slack of 2 so tiny
/// counts don't make the bound vacuous or impossible.
fn within_tolerance(got: i64, want: i64) -> bool {
    let slack = ((want as f64 * 0.3).ceil() as i64).max(2);
    (got - want).abs() <= slack
}

#[test]
fn security_matrix_matches_golden() {
    let got_blob = render();
    let path = golden_path();
    if std::env::var_os("R2C_BLESS").is_some() {
        std::fs::write(&path, &got_blob).unwrap();
        return;
    }
    let want_blob = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run with R2C_BLESS=1 to record)",
            path.display()
        )
    });
    let got = parse(&got_blob);
    let want = parse(&want_blob);
    assert_eq!(
        got.keys().collect::<Vec<_>>(),
        want.keys().collect::<Vec<_>>(),
        "record set changed — re-bless if intentional"
    );

    let mut errors = Vec::new();
    for (key, w) in &want {
        let g = &got[key];
        if key.starts_with("matrix/") {
            // Success counts are the security claim: exact.
            if int(g, "success") != int(w, "success") {
                errors.push(format!(
                    "{key}: success {} != golden {}",
                    int(g, "success"),
                    int(w, "success")
                ));
            }
            for field in ["detected", "crashed", "failed"] {
                if !within_tolerance(int(g, field), int(w, field)) {
                    errors.push(format!(
                        "{key}: {field} {} outside tolerance of golden {}",
                        int(g, field),
                        int(w, field)
                    ));
                }
            }
        } else {
            // Blind ROP: outcome counts exact; per-campaign probe
            // counts within ±50% (and matching multiplicity).
            for field in ["success", "detected", "exhausted"] {
                if int(g, field) != int(w, field) {
                    errors.push(format!(
                        "{key}: {field} {} != golden {}",
                        int(g, field),
                        int(w, field)
                    ));
                }
            }
            for field in ["probes_success", "probes_detect"] {
                let gp = probe_list(g, field);
                let wp = probe_list(w, field);
                if gp.len() != wp.len() {
                    errors.push(format!(
                        "{key}: {field} campaign count {} != golden {}",
                        gp.len(),
                        wp.len()
                    ));
                    continue;
                }
                for (i, (&a, &b)) in gp.iter().zip(&wp).enumerate() {
                    let slack = ((b as f64 * 0.5).ceil() as i64).max(2);
                    if (a - b).abs() > slack {
                        errors.push(format!(
                            "{key}: {field}[{i}] = {a} outside ±50% of golden {b}"
                        ));
                    }
                }
            }
        }
    }
    assert!(
        errors.is_empty(),
        "security golden mismatch (R2C_BLESS=1 re-records after intentional changes):\n  {}",
        errors.join("\n  ")
    );
}

/// Independent of the golden numbers: the headline §7.2 claim. Full
/// R²C must zero out every matrix attack at this trial count, and the
/// unprotected baseline must fall to the classic ones.
#[test]
fn full_r2c_blocks_every_matrix_attack() {
    let (rop_base, rop_full, direct_full) = std::thread::scope(|scope| {
        let a = scope.spawn(|| matrix_cell("ROP", false, TRIALS));
        let b = scope.spawn(|| matrix_cell("ROP", true, TRIALS));
        let c = scope.spawn(|| matrix_cell("JIT-ROP (direct)", true, TRIALS));
        (a.join().unwrap(), b.join().unwrap(), c.join().unwrap())
    });
    assert!(
        rop_base.tally.success == TRIALS as u32,
        "classic ROP must reliably beat the unprotected baseline: {}",
        rop_base.tally
    );
    assert_eq!(
        rop_full.tally.success, 0,
        "classic ROP must not beat full R2C: {}",
        rop_full.tally
    );
    assert_eq!(
        direct_full.tally.success, 0,
        "XoM must stop direct code disclosure: {}",
        direct_full.tally
    );
    assert_eq!(MATRIX_ATTACKS.len(), 5);
}
