//! Classic (indirect-disclosure) ROP.
//!
//! The attacker leaks the handler's return address from the stack at
//! the profiled offset, converts it into the code base using static
//! knowledge of the binary, and computes the gadget addresses a chain
//! needs. Against an undiversified target with plain ASLR this works
//! deterministically; R²C breaks every step (BTRAs hide the return
//! address; NOP insertion breaks the return-address → function-base
//! step; prolog traps and shuffling break the function-base → gadget
//! step).

use r2c_vm::{Image, Vm};

use crate::knowledge::{probe_words, ret_gadget_addr, AttackerKnowledge, GADGET_FUNCS};
use crate::outcome::Outcome;

/// Mounts the attack against a run victim.
///
/// `chain_len` is the number of gadget addresses the chain needs; the
/// attacker derives each from the same leaked return address (the
/// paper's §7.2.1 analysis: needing `n` correct return addresses drops
/// the success probability to `(1/(R+1))^n` — here a single wrong leak
/// already sinks the chain).
pub fn classic_rop(vm: &mut Vm, image: &Image, k: &AttackerKnowledge, chain_len: u32) -> Outcome {
    let Some(ra_off) = k.ra_slot_off else {
        return Outcome::Failed("no profiled return-address offset");
    };
    let (rsp, words) = probe_words(vm);
    let idx = (ra_off / 8) as usize;
    if idx >= words.len() {
        return Outcome::Failed("profiled offset outside leak");
    }
    let leaked_ra = words[idx];
    let _ = rsp;
    // Static-knowledge inference: leaked RA → main base → per-function
    // ret gadgets (rotating through the available gadget functions).
    let main_base = leaked_ra.wrapping_add_signed(-k.ra_to_main);
    let gadgets: Vec<u64> = (0..chain_len as usize)
        .map(|i| {
            main_base.wrapping_add_signed(k.ret_gadgets_rel_main[i % k.ret_gadgets_rel_main.len()])
        })
        .collect();

    // Ground truth for scoring the *goal* (the chain is also actually
    // executed below — wrong addresses crash or trap on their own).
    let truth: Vec<u64> = (0..chain_len as usize)
        .map(|i| ret_gadget_addr(image, GADGET_FUNCS[i % GADGET_FUNCS.len()]))
        .collect();
    let all_correct = gadgets == truth;

    // Execute the chain for real: each gadget's ret pops the next.
    let out = vm.hijack_chain(&gadgets);
    match out.status {
        r2c_vm::ExitStatus::Exited(_) if all_correct => Outcome::Success,
        r2c_vm::ExitStatus::Exited(_) => Outcome::Failed("chain ran astray"),
        r2c_vm::ExitStatus::Faulted(f) => Outcome::from_fault(f),
        r2c_vm::ExitStatus::Probed => Outcome::Failed("victim paused unexpectedly"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::{build_victim, run_victim};
    use r2c_core::R2cConfig;

    #[test]
    fn rop_succeeds_on_unprotected() {
        let cfg = R2cConfig::baseline(0);
        let k = AttackerKnowledge::profile(&cfg, 999);
        let v = build_victim(cfg.with_seed(1));
        let mut vm = run_victim(&v.image);
        assert_eq!(classic_rop(&mut vm, &v.image, &k, 4), Outcome::Success);
    }

    #[test]
    fn rop_fails_on_full_r2c() {
        let cfg = R2cConfig::full(0);
        let k = AttackerKnowledge::profile(&cfg, 999);
        let mut successes = 0;
        for seed in 1..=8 {
            let v = build_victim(cfg.with_seed(seed));
            let mut vm = run_victim(&v.image);
            if classic_rop(&mut vm, &v.image, &k, 4).is_success() {
                successes += 1;
            }
        }
        assert_eq!(successes, 0, "classic ROP must not survive full R²C");
    }
}
