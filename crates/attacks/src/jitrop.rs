//! JIT-ROP: just-in-time gadget discovery (paper §2.1).
//!
//! * **Direct** JIT-ROP reads the text section through a leaked code
//!   pointer and disassembles gadgets on the fly. Execute-only memory
//!   stops the read itself.
//! * **Indirect** JIT-ROP cannot read code; it harvests code pointers
//!   from readable memory (the stack) and infers gadget locations from
//!   them. BTRAs poison the harvest: the attacker must pick among
//!   `R + 1` identical-looking candidates, and booby traps punish the
//!   wrong picks.

use rand::Rng;

use r2c_vm::image::Region;
use r2c_vm::{Image, Insn, Vm};

use crate::knowledge::{probe_words, ret_gadget_addr, AttackerKnowledge};
use crate::outcome::Outcome;

/// Direct JIT-ROP: leak a code pointer from the stack, then read and
/// disassemble the surrounding code page to find a `ret` gadget.
pub fn direct_jitrop(vm: &mut Vm, image: &Image) -> Outcome {
    let (_rsp, words) = probe_words(vm);
    // Any text-region value serves as the initial code pointer.
    let Some(&code_ptr) = words
        .iter()
        .find(|&&w| image.layout.region_of(w) == Some(Region::Text))
    else {
        return Outcome::Failed("no code pointer on the stack");
    };
    // Read a window of code around the pointer (this is the step XoM
    // forbids).
    let page = code_ptr & !0xfff;
    let mut addr = page;
    let mut found = None;
    while addr < page + 0x1000 {
        match vm.attacker_disassemble(addr) {
            Ok(insn) => {
                if matches!(insn, Insn::Ret) {
                    found = Some(addr);
                    break;
                }
                addr += insn.len();
            }
            Err(f) => {
                // Either an unmapped hole, a permission fault (XoM), or
                // a non-instruction boundary; a permission fault kills
                // the process.
                if let r2c_vm::Fault::Protection { .. } = f {
                    return Outcome::from_fault(f);
                }
                addr += 1;
            }
        }
    }
    match found {
        Some(g) => {
            // Disassembled gadget addresses are exact: hijack succeeds.
            let out = vm.hijack(g);
            match out.status {
                r2c_vm::ExitStatus::Exited(_) => Outcome::Success,
                r2c_vm::ExitStatus::Faulted(f) => Outcome::from_fault(f),
                r2c_vm::ExitStatus::Probed => Outcome::Failed("victim paused unexpectedly"),
            }
        }
        None => Outcome::Failed("no gadget found in window"),
    }
}

/// Indirect JIT-ROP: harvest text-range values from the stack leak,
/// pick one as a return address, and infer a gadget from it using
/// static knowledge.
///
/// Against BTRAs the candidate set contains the booby-trapped
/// addresses, which are indistinguishable from the genuine return
/// address (properties (A)–(C) of §4.1); `rng` models the forced
/// random choice.
pub fn indirect_jitrop(
    vm: &mut Vm,
    image: &Image,
    k: &AttackerKnowledge,
    rng: &mut impl Rng,
) -> Outcome {
    let (_rsp, words) = probe_words(vm);
    let candidates: Vec<u64> = words
        .iter()
        .copied()
        .filter(|&w| image.layout.region_of(w) == Some(Region::Text))
        .collect();
    if candidates.is_empty() {
        return Outcome::Failed("no code pointers harvested");
    }
    let pick = candidates[rng.gen_range(0..candidates.len())];
    // Treat the pick as the handler return address and infer the gadget.
    let main_base = pick.wrapping_add_signed(-k.ra_to_main);
    let gadget = main_base
        .wrapping_add_signed(k.helper_rel_main)
        .wrapping_add_signed(k.gadget_rel_helper);
    if gadget == ret_gadget_addr(image, "helper") {
        let out = vm.hijack(gadget);
        return match out.status {
            r2c_vm::ExitStatus::Exited(_) => Outcome::Success,
            r2c_vm::ExitStatus::Faulted(f) => Outcome::from_fault(f),
            r2c_vm::ExitStatus::Probed => Outcome::Failed("victim paused unexpectedly"),
        };
    }
    let out = vm.hijack(gadget);
    match out.status {
        r2c_vm::ExitStatus::Faulted(f) => Outcome::from_fault(f),
        r2c_vm::ExitStatus::Exited(_) => Outcome::Failed("wrong gadget"),
        r2c_vm::ExitStatus::Probed => Outcome::Failed("victim paused unexpectedly"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::{build_victim, run_victim};
    use r2c_core::{DiversifyConfig, R2cConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn direct_jitrop_succeeds_without_xom() {
        let cfg = R2cConfig::baseline(0); // baseline maps text R|X
        let v = build_victim(cfg.with_seed(2));
        let mut vm = run_victim(&v.image);
        assert_eq!(direct_jitrop(&mut vm, &v.image), Outcome::Success);
    }

    #[test]
    fn direct_jitrop_crashes_against_xom() {
        // Function shuffling alone plus XoM (a Readactor-style setup).
        let cfg = R2cConfig {
            diversify: DiversifyConfig {
                func_shuffle: true,
                xom: true,
                booby_trap_funcs: 8,
                ..DiversifyConfig::none()
            },
            seed: 3,
            check: cfg!(debug_assertions),
            check_decode: cfg!(debug_assertions),
        };
        let v = build_victim(cfg);
        let mut vm = run_victim(&v.image);
        let out = direct_jitrop(&mut vm, &v.image);
        assert!(
            matches!(out, Outcome::Crashed(_)),
            "XoM must stop the code read: {out:?}"
        );
    }

    #[test]
    fn indirect_jitrop_succeeds_on_unprotected() {
        let cfg = R2cConfig::baseline(0);
        let k = AttackerKnowledge::profile(&cfg, 50);
        let v = build_victim(cfg.with_seed(4));
        let mut vm = run_victim(&v.image);
        // On an unprotected stack, almost all text-range values are
        // genuine return addresses of the same call chain; the pick may
        // still hit the helper-call RA vs handler-call RA. Give the
        // attacker a few tries (each on a fresh victim) — without
        // BTRAs nothing punishes retries.
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ok = false;
        for _ in 0..8 {
            if indirect_jitrop(&mut vm, &v.image, &k, &mut rng).is_success() {
                ok = true;
                break;
            }
            vm = run_victim(&v.image);
        }
        assert!(ok, "indirect JIT-ROP should work unprotected");
    }

    #[test]
    fn indirect_jitrop_mostly_fails_under_full_r2c() {
        let cfg = R2cConfig::full(0);
        let k = AttackerKnowledge::profile(&cfg, 50);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut successes = 0;
        let mut detected = 0;
        for seed in 0..12 {
            let v = build_victim(cfg.with_seed(seed));
            let mut vm = run_victim(&v.image);
            match indirect_jitrop(&mut vm, &v.image, &k, &mut rng) {
                Outcome::Success => successes += 1,
                Outcome::Detected => detected += 1,
                _ => {}
            }
        }
        assert_eq!(successes, 0, "indirect JIT-ROP must not survive full R²C");
        assert!(detected > 0, "booby traps should catch some attempts");
    }
}
