//! Address-Oblivious Code Reuse (paper §2.3).
//!
//! The full pipeline of the AOCR paper's attacks, oblivious to the code
//! layout but dependent on the *data* layout:
//!
//! * **(A) profile pointer locations on the stack** — Malicious Thread
//!   Blocking leaks the handler frame; the attacker reads the function
//!   pointer at the offset profiled from their local copy, and/or
//!   identifies heap pointers by value-range clustering;
//! * **(B) leak heap data to reach the data section** — dereference a
//!   heap pointer from the cluster and scan the object for a pointer
//!   into the data section;
//! * **(C) corrupt function default parameters** — compute the address
//!   of the `default_param` global from the leaked data pointer using
//!   the (statically known) global layout, overwrite it, and mount a
//!   whole-function reuse call of the dispatcher.
//!
//! R²C counters each step: stack-slot randomization moves the function
//! pointer; BTDPs poison the heap-pointer cluster (dereferencing one
//! trips a guard page); global shuffling breaks the data-section
//! delta (§7.2.2–7.2.3).

use rand::Rng;

use r2c_vm::image::Region;
use r2c_vm::{Image, Vm};

use crate::knowledge::{probe_words, AttackerKnowledge};
use crate::outcome::Outcome;
use crate::victim::{privileged_fired_with_magic, MAGIC_ARG};

/// AOCR's heap-cluster heuristic: among the clusters of high (≥ 2^32)
/// values, discard anything near the leaked stack pointer (those are
/// stack addresses — the attacker knows `rsp` from the leak itself) and
/// singletons, then take the largest remaining cluster. In the AOCR
/// paper's measurements the heap cluster is "typically the third
/// largest" overall; with the stack and text clusters excluded it is
/// the largest remaining one.
fn pick_heap_cluster(
    clusters: &[r2c_core::analysis::Cluster],
    rsp: u64,
) -> Option<&r2c_core::analysis::Cluster> {
    clusters.iter().find(|c| {
        c.min >= (1u64 << 32)
            && c.members.len() >= 2
            && c.members.iter().all(|&m| m.abs_diff(rsp) > (1 << 24))
    })
}

/// Mounts the full AOCR attack against a run victim.
pub fn aocr_attack(
    vm: &mut Vm,
    image: &Image,
    k: &AttackerKnowledge,
    rng: &mut impl Rng,
) -> Outcome {
    let (rsp, words) = probe_words(vm);

    // --- Step A: find a heap pointer via value-range clustering. ----
    let clusters = r2c_core::analysis::cluster_values(&words, 1 << 32);
    let Some(hc) = pick_heap_cluster(&clusters, rsp) else {
        return Outcome::Failed("no heap-pointer cluster");
    };
    let heap_ptr = hc.members[rng.gen_range(0..hc.members.len())];

    // --- Step B: leak the heap object, look for a data-section
    // pointer. Dereferencing a BTDP faults right here. ---------------
    let obj = match vm.attacker_read(heap_ptr, 64) {
        Ok(b) => b,
        Err(f) => return Outcome::from_fault(f),
    };
    let obj_words: Vec<u64> = obj
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    // Data pointers are low (below 2^32 in our layout) but not tiny;
    // AOCR distinguishes them from text by their distance to leaked
    // code values.
    let text_hint = words
        .iter()
        .copied()
        .find(|&w| image.layout.region_of(w) == Some(Region::Text))
        .unwrap_or(0x40_0000);
    let data_ptr = obj_words
        .iter()
        .copied()
        .find(|&w| (0x10_0000..0x1_0000_0000).contains(&w) && w.abs_diff(text_hint) > (1 << 26));
    let Some(banner_ptr) = data_ptr else {
        return Outcome::Failed("no data-section pointer in leaked object");
    };

    // --- Step C: corrupt the default parameter and reuse the
    // dispatcher. -----------------------------------------------------
    let default_addr = banner_ptr.wrapping_add_signed(k.default_rel_banner);
    if let Err(f) = vm.attacker_write_u64(default_addr, MAGIC_ARG as u64) {
        return Outcome::from_fault(f);
    }
    // Whole-function reuse target: derive `dispatch` from the function
    // pointer harvested at the profiled stack offset.
    let Some(fp_off) = k.fp_slot_off else {
        return Outcome::Failed("no profiled function-pointer offset");
    };
    let idx = (fp_off / 8) as usize;
    if idx >= words.len() {
        return Outcome::Failed("function-pointer offset outside leak");
    }
    let fp = words[idx];
    let dispatch = fp.wrapping_add_signed(k.dispatch_rel_priv);
    let out = vm.hijack(dispatch);
    match out.status {
        r2c_vm::ExitStatus::Exited(_) if privileged_fired_with_magic(vm) => Outcome::Success,
        r2c_vm::ExitStatus::Exited(_) => Outcome::Failed("dispatcher ran with benign parameter"),
        r2c_vm::ExitStatus::Faulted(f) => Outcome::from_fault(f),
        r2c_vm::ExitStatus::Probed => Outcome::Failed("victim paused unexpectedly"),
    }
}

/// AOCR whole-function reuse via the harvested pointer *itself*
/// (argument-controlled): the attacker calls the leaked function
/// pointer directly with the malicious argument. This is the variant
/// that defeats code-pointer hiding — a trampoline pointer reveals no
/// addresses, but it can still be **called** (§2.2: "CPH function
/// pointers can be called using whole-function reuse").
pub fn aocr_direct_fp(vm: &mut Vm, _image: &Image, k: &AttackerKnowledge) -> Outcome {
    let (_rsp, words) = probe_words(vm);
    let Some(fp_off) = k.fp_slot_off else {
        return Outcome::Failed("no profiled function-pointer offset");
    };
    let idx = (fp_off / 8) as usize;
    if idx >= words.len() {
        return Outcome::Failed("function-pointer offset outside leak");
    }
    let fp = words[idx];
    let out = vm.call(fp, &[MAGIC_ARG as u64]);
    match out.status {
        r2c_vm::ExitStatus::Exited(_) if privileged_fired_with_magic(vm) => Outcome::Success,
        r2c_vm::ExitStatus::Exited(_) => Outcome::Failed("reused the wrong function"),
        r2c_vm::ExitStatus::Faulted(f) => Outcome::from_fault(f),
        r2c_vm::ExitStatus::Probed => Outcome::Failed("victim paused unexpectedly"),
    }
}

/// The heap-pointer harvesting step alone (for the §7.2.3 measurement
/// of BTDP dilution): picks a random member of the heap cluster and
/// dereferences it. Returns whether the pick was benign, plus the
/// cluster size.
pub fn harvest_heap_pointer(vm: &mut Vm, rng: &mut impl Rng) -> (Outcome, usize) {
    let (rsp, words) = probe_words(vm);
    let clusters = r2c_core::analysis::cluster_values(&words, 1 << 32);
    let Some(hc) = pick_heap_cluster(&clusters, rsp) else {
        return (Outcome::Failed("no heap cluster"), 0);
    };
    let size = hc.members.len();
    let pick = hc.members[rng.gen_range(0..size)];
    match vm.attacker_read(pick, 8) {
        Ok(_) => (Outcome::Success, size),
        Err(f) => (Outcome::from_fault(f), size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Tally;
    use crate::victim::{build_victim, run_victim};
    use r2c_core::R2cConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn aocr_succeeds_on_unprotected() {
        let cfg = R2cConfig::baseline(0);
        let k = AttackerKnowledge::profile(&cfg, 77);
        let mut rng = SmallRng::seed_from_u64(5);
        // The cluster pick may select h2 (the second heap object) whose
        // bytes hold no data pointer; AOCR simply retries — nothing
        // punishes a wrong benign pick on an unprotected target.
        let mut ok = false;
        let mut log = Vec::new();
        for seed in 1..=12 {
            let v = build_victim(cfg.with_seed(seed));
            let mut vm = run_victim(&v.image);
            let out = aocr_attack(&mut vm, &v.image, &k, &mut rng);
            if out.is_success() {
                ok = true;
                break;
            }
            log.push(out);
        }
        assert!(
            ok,
            "AOCR must succeed against the unprotected victim: {log:?}"
        );
    }

    #[test]
    fn aocr_defeated_by_full_r2c() {
        let cfg = R2cConfig::full(0);
        let k = AttackerKnowledge::profile(&cfg, 77);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut tally = Tally::default();
        for seed in 0..16 {
            let v = build_victim(cfg.with_seed(seed));
            let mut vm = run_victim(&v.image);
            tally.add(&aocr_attack(&mut vm, &v.image, &k, &mut rng));
        }
        assert_eq!(tally.success, 0, "AOCR must not survive full R²C: {tally}");
    }

    #[test]
    fn btdp_poisons_heap_harvest() {
        // With BTDPs enabled, a fraction of harvest attempts must trip
        // guard pages, and the empirical rate should be in the
        // ballpark of B / (H + B).
        let cfg = R2cConfig::full(0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut detected = 0;
        let mut total = 0;
        for seed in 0..24 {
            let v = build_victim(cfg.with_seed(seed));
            let mut vm = run_victim(&v.image);
            let (out, size) = harvest_heap_pointer(&mut vm, &mut rng);
            assert!(size > 0);
            total += 1;
            if out.is_detected() {
                detected += 1;
            }
        }
        assert!(
            detected > 0,
            "BTDPs must punish some picks ({detected}/{total})"
        );
    }

    #[test]
    fn direct_fp_reuse_defeats_code_pointer_hiding() {
        // §2.2: CPH pointers reveal no addresses but can still be
        // called. The Readactor-like model (CPH + code diversification,
        // no data diversification) falls to the direct variant.
        use r2c_codegen::DiversifyConfig;
        let cfg = R2cConfig {
            diversify: DiversifyConfig {
                func_shuffle: true,
                nop_insertion: Some((1, 9)),
                xom: true,
                cph: true,
                booby_trap_funcs: 16,
                ..DiversifyConfig::none()
            },
            seed: 0,
            check: cfg!(debug_assertions),
            check_decode: cfg!(debug_assertions),
        };
        let k = AttackerKnowledge::profile(&cfg, 42);
        let mut ok = 0;
        for seed in 0..6 {
            let v = build_victim(cfg.with_seed(seed));
            let mut vm = run_victim(&v.image);
            if aocr_direct_fp(&mut vm, &v.image, &k).is_success() {
                ok += 1;
            }
        }
        assert_eq!(
            ok, 6,
            "CPH must not stop argument-controlled whole-function reuse"
        );
    }

    #[test]
    fn direct_fp_reuse_mostly_fails_under_full_r2c() {
        // Stack-slot randomization is probabilistic: the profiled slot
        // offset can coincide across variants by chance (frames have
        // finitely many slots), so the guarantee is a sharply reduced
        // success rate with crash/detection risk on misses — not an
        // absolute zero (§7.2.2).
        let cfg = R2cConfig::full(0);
        let k = AttackerKnowledge::profile(&cfg, 42);
        let mut ok = 0;
        let n = 16;
        for seed in 0..n {
            let v = build_victim(cfg.with_seed(seed));
            let mut vm = run_victim(&v.image);
            if aocr_direct_fp(&mut vm, &v.image, &k).is_success() {
                ok += 1;
            }
        }
        assert!(
            ok <= n / 4,
            "stack-slot randomization should usually hide the pointer ({ok}/{n})"
        );
    }

    #[test]
    fn unprotected_harvest_never_detected() {
        let cfg = R2cConfig::baseline(0);
        let mut rng = SmallRng::seed_from_u64(8);
        for seed in 0..8 {
            let v = build_victim(cfg.with_seed(seed));
            let mut vm = run_victim(&v.image);
            let (out, _) = harvest_heap_pointer(&mut vm, &mut rng);
            assert!(!out.is_detected(), "no BTDPs, no detections");
        }
    }
}
