//! The victim program all attacks target.
//!
//! A miniature "server" with exactly the ingredients the AOCR paper
//! exploits (paper §2.3, Figure 1):
//!
//! * a request handler whose stack frame contains **heap pointers**, a
//!   **function pointer**, a recognizable **anchor value** and, of
//!   course, its **return address**;
//! * a heap object holding a **pointer into the data section** (the
//!   stepping stone of AOCR attack B);
//! * a global **default parameter** that a dispatcher passes to a
//!   privileged function (the corruption target of AOCR attack C);
//! * a **Malicious-Thread-Blocking point** (`probe`) inside the handler
//!   where the attacker can observe the blocked thread's stack.
//!
//! The attack goal is to have `privileged` run with the attacker's
//! argument [`MAGIC_ARG`]; it prints [`PRIV_MARKER`] followed by its
//! argument, so success is visible in the program output.

use r2c_core::{R2cCompiler, R2cConfig, VariantInfo};
use r2c_ir::{BinOp, ExternFn, GlobalInit, Module, ModuleBuilder};
use r2c_vm::{Image, MachineKind, Vm, VmConfig};

/// Argument the attacker tries to smuggle into `privileged`.
pub const MAGIC_ARG: i64 = 0x1337;
/// Marker `privileged` prints before its argument.
pub const PRIV_MARKER: i64 = 777_000_777;
/// Benign default parameter value.
pub const BENIGN_PARAM: i64 = 1111;
/// Anchor constant the handler stores in a local (the `0xaaaa` of the
/// paper's Figure 2: a value the attacker recognizes and could use to
/// locate the return address relative to it).
pub const ANCHOR: i64 = 0xAAAA;

/// Builds the victim IR module.
pub fn victim_module() -> Module {
    let mut mb = ModuleBuilder::new("victim");
    // A few globals; @banner is the one the heap object points to, and
    // @default_param the corruption target. Filler globals give the
    // shuffle something to shuffle.
    let banner = mb.global("banner", GlobalInit::Words(vec![0x42, 0x42]), 8);
    let filler1 = mb.global("filler1", GlobalInit::Zero(48), 8);
    let default_param = mb.global("default_param", GlobalInit::Words(vec![BENIGN_PARAM]), 8);
    let filler2 = mb.global("filler2", GlobalInit::Zero(24), 8);
    let counter = mb.global("request_count", GlobalInit::Zero(8), 8);
    let _ = (filler1, filler2);

    let privileged = mb.declare_function("privileged", 1);
    let helper = mb.declare_function("helper", 1);
    let dispatch = mb.declare_function("dispatch", 0);
    let handler = mb.declare_function("handler", 1);

    {
        let mut f = mb.function("privileged", 1);
        let p = f.param(0);
        let m = f.iconst(PRIV_MARKER);
        f.call_extern(ExternFn::PrintI64, &[m]);
        f.call_extern(ExternFn::PrintI64, &[p]);
        f.ret(Some(p));
        f.finish();
    }
    {
        let mut f = mb.function("helper", 1);
        let p = f.param(0);
        let c = f.iconst(3);
        let r = f.bin(BinOp::Mul, p, c);
        let one = f.iconst(1);
        let r2 = f.bin(BinOp::Add, r, one);
        f.ret(Some(r2));
        f.finish();
    }
    {
        // The whole-function-reuse target of AOCR attack C: passes the
        // (corruptible) global default parameter to `privileged`.
        let mut f = mb.function("dispatch", 0);
        let g = f.global_addr(default_param);
        let p = f.load(g, 0);
        let r = f.call(privileged, &[p]);
        f.ret(Some(r));
        f.finish();
    }
    {
        let mut f = mb.function("handler", 1);
        let req = f.param(0);
        let locals = f.alloca(96, 8);
        // Two heap objects; their pointers live in the frame.
        let sz1 = f.iconst(128);
        let h1 = f.call_extern(ExternFn::Malloc, &[sz1]);
        let sz2 = f.iconst(64);
        let h2 = f.call_extern(ExternFn::Malloc, &[sz2]);
        f.store(locals, 0, h1);
        f.store(locals, 8, h2);
        // The heap object references a global — the data-section
        // stepping stone (attack B).
        let gb = f.global_addr(banner);
        f.store(h1, 16, gb);
        f.store(h1, 24, req);
        // A function pointer in the frame (attack A's harvest).
        let fp = f.func_addr(privileged);
        f.store(locals, 16, fp);
        // The anchor local.
        let anchor = f.iconst(ANCHOR);
        f.store(locals, 24, anchor);
        // Some work, creating and tearing down a deeper frame.
        let w = f.call(helper, &[req]);
        f.store(locals, 32, w);
        // Count the request in a global.
        let gc = f.global_addr(counter);
        let c0 = f.load(gc, 0);
        let one = f.iconst(1);
        let c1 = f.bin(BinOp::Add, c0, one);
        f.store(gc, 0, c1);
        // The thread "blocks" here; the attacker observes the stack.
        f.call_extern(ExternFn::Probe, &[]);
        let v = f.load(h1, 24);
        let a = f.load(locals, 24);
        let r = f.bin(BinOp::Add, v, a);
        // h1/h2 intentionally stay allocated (live heap objects).
        f.ret(Some(r));
        f.finish();
    }
    {
        let mut f = mb.function("main", 0);
        let acc_slot = f.alloca(8, 8);
        let zero = f.iconst(0);
        f.store(acc_slot, 0, zero);
        let body = f.new_block("body");
        let done = f.new_block("done");
        let i_slot = f.alloca(8, 8);
        f.store(i_slot, 0, zero);
        f.br(body);
        f.switch_to(body);
        let i = f.load(i_slot, 0);
        let r = f.call(handler, &[i]);
        let acc = f.load(acc_slot, 0);
        let acc2 = f.bin(BinOp::Add, acc, r);
        f.store(acc_slot, 0, acc2);
        let one = f.iconst(1);
        let i2 = f.bin(BinOp::Add, i, one);
        f.store(i_slot, 0, i2);
        let lim = f.iconst(4);
        let again = f.cmp(r2c_ir::CmpOp::Lt, i2, lim);
        f.cond_br(again, body, done);
        f.switch_to(done);
        let fin = f.load(acc_slot, 0);
        f.ret(Some(fin));
        f.finish();
    }
    let _ = (dispatch, handler);
    mb.finish()
}

/// A built victim: the image plus build info.
pub struct VictimBuild {
    /// The linked victim image.
    pub image: Image,
    /// Static variant information.
    pub info: VariantInfo,
}

/// Builds the victim with the given configuration.
pub fn build_victim(cfg: R2cConfig) -> VictimBuild {
    let m = victim_module();
    let (image, info) = R2cCompiler::new(cfg)
        .build_with_info(&m)
        .expect("victim must compile");
    VictimBuild { image, info }
}

/// Runs the victim to completion (populating stack probes and heap
/// state) and returns the VM, ready for attack steps.
pub fn run_victim(image: &Image) -> Vm {
    let mut vm = Vm::new(image, VmConfig::new(MachineKind::EpycRome.config()));
    let out = vm.run();
    assert!(
        out.status.is_exit(),
        "victim must run cleanly: {:?}",
        out.status
    );
    assert!(!vm.probes.is_empty(), "victim must have probed its stack");
    vm
}

/// True if the program output shows `privileged(MAGIC_ARG)` executed.
pub fn privileged_fired_with_magic(vm: &Vm) -> bool {
    vm.output.windows(2).any(|w| w == [PRIV_MARKER, MAGIC_ARG])
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_core::R2cConfig;
    use r2c_ir::interpret;

    #[test]
    fn victim_is_valid_and_runs() {
        let m = victim_module();
        r2c_ir::verify_module(&m).unwrap();
        let expected = interpret(&m, "main", 10_000_000).unwrap();
        for cfg in [R2cConfig::baseline(1), R2cConfig::full(1)] {
            let v = build_victim(cfg);
            let vm = run_victim(&v.image);
            assert_eq!(vm.output, expected.output);
            assert!(!privileged_fired_with_magic(&vm));
        }
    }

    #[test]
    fn probe_snapshot_contains_frame_values() {
        // In the baseline build, the leak must expose the anchor, a
        // heap pointer, the function pointer and the return address —
        // the Figure 2a situation.
        let v = build_victim(R2cConfig::baseline(3));
        let vm = run_victim(&v.image);
        let snap = &vm.probes[0];
        let words: Vec<u64> = snap
            .bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert!(words.contains(&(ANCHOR as u64)), "anchor visible");
        let priv_addr = v.image.func_addr("privileged");
        assert!(words.contains(&priv_addr), "function pointer visible");
        let heapish = words.iter().any(|&w| {
            w >= v.image.layout.heap_base && w < v.image.layout.heap_base + v.image.layout.heap_size
        });
        assert!(heapish, "heap pointer visible");
    }

    #[test]
    fn dispatch_uses_default_param() {
        let v = build_victim(R2cConfig::baseline(5));
        let mut vm = run_victim(&v.image);
        let out = vm.call(v.image.func_addr("dispatch"), &[]);
        assert!(out.status.is_exit());
        let n = vm.output.len();
        assert_eq!(&vm.output[n - 2..], &[PRIV_MARKER, BENIGN_PARAM]);
    }
}
