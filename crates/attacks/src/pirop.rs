//! Position-Independent ROP (PIROP) via partial pointer corruption
//! (paper §7.2.5).
//!
//! PIROP never reads a full pointer: it overwrites only the low bytes
//! of a code pointer already present in memory, relying on the fact
//! that page-granular ASLR leaves sub-page offsets of every instruction
//! invariant across loads. The attacker learns those low bits from
//! their own copy of the binary.
//!
//! R²C impedes PIROP twice over: function shuffling and sub-function
//! randomization (NOPs, prolog traps, BTRA windows) change sub-page
//! offsets per *variant*, so the statically known low bits are wrong;
//! and the corrupted pointer must be the genuine return address in the
//! first place, which BTRAs hide among decoys.

use r2c_vm::{Image, Vm};

use crate::knowledge::{handler_call_ra, ret_gadget_addr, AttackerKnowledge};
use crate::outcome::Outcome;

/// Result of the low-bits prediction step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PiropPrediction {
    /// Low 12 bits the attacker writes.
    pub predicted_low12: u16,
    /// Ground-truth low 12 bits of the gadget in the victim variant.
    pub actual_low12: u16,
}

/// Checks whether the attacker's sub-page knowledge transfers to the
/// victim variant.
pub fn predict_low_bits(image: &Image, k: &AttackerKnowledge) -> PiropPrediction {
    let actual = (ret_gadget_addr(image, "helper") & 0xfff) as u16;
    PiropPrediction {
        predicted_low12: k.gadget_low12,
        actual_low12: actual,
    }
}

/// Mounts the PIROP attack: overwrite the low 12 bits of the handler's
/// saved return address with the predicted gadget offset, then let the
/// frame return.
///
/// For the corruption target we use ground truth (the genuine return
/// address slot): this *over-approximates* the attacker, who under
/// BTRAs would first have to find the slot among the decoys. Even with
/// that head start, sub-function randomization defeats the low-bit
/// prediction.
pub fn pirop_attack(vm: &mut Vm, image: &Image, k: &AttackerKnowledge) -> Outcome {
    let snap = vm.probes[0].clone();
    let (rsp, bytes) = (snap.rsp, snap.bytes);
    let ra_value = handler_call_ra(image);
    let words: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let Some(slot) = words.iter().position(|&w| w == ra_value) else {
        return Outcome::Failed("return address not in leak window");
    };
    let slot_addr = rsp + 8 * slot as u64;
    // Partial overwrite: keep the high 52 bits, replace the low 12.
    let corrupted = (ra_value & !0xfff) | k.gadget_low12 as u64;
    if let Err(f) = vm.attacker_write_u64(slot_addr, corrupted) {
        return Outcome::from_fault(f);
    }
    // The gadget must share the page with the return address for a
    // 12-bit overwrite to reach it.
    let out = vm.hijack(corrupted);
    let true_gadget = ret_gadget_addr(image, "helper");
    match out.status {
        r2c_vm::ExitStatus::Exited(_) if corrupted == true_gadget => Outcome::Success,
        r2c_vm::ExitStatus::Exited(_) => Outcome::Failed("landed on the wrong instruction"),
        r2c_vm::ExitStatus::Faulted(f) => Outcome::from_fault(f),
        r2c_vm::ExitStatus::Probed => Outcome::Failed("victim paused unexpectedly"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::{build_victim, run_victim};
    use r2c_core::R2cConfig;

    #[test]
    fn low_bits_transfer_without_diversification() {
        let cfg = R2cConfig::baseline(0);
        let k = AttackerKnowledge::profile(&cfg, 31);
        for seed in 1..=4 {
            let v = build_victim(cfg.with_seed(seed));
            let p = predict_low_bits(&v.image, &k);
            assert_eq!(
                p.predicted_low12, p.actual_low12,
                "sub-page offsets must survive plain ASLR"
            );
        }
    }

    #[test]
    fn low_bits_break_under_full_r2c() {
        let cfg = R2cConfig::full(0);
        let k = AttackerKnowledge::profile(&cfg, 31);
        let mut hits = 0;
        let n = 12;
        for seed in 0..n {
            let v = build_victim(cfg.with_seed(seed));
            let p = predict_low_bits(&v.image, &k);
            if p.predicted_low12 == p.actual_low12 {
                hits += 1;
            }
        }
        assert!(
            hits <= 1,
            "sub-function randomization must break low-bit knowledge ({hits}/{n})"
        );
    }

    #[test]
    fn pirop_fails_under_full_r2c() {
        let cfg = R2cConfig::full(0);
        let k = AttackerKnowledge::profile(&cfg, 31);
        let mut successes = 0;
        for seed in 0..8 {
            let v = build_victim(cfg.with_seed(seed));
            let mut vm = run_victim(&v.image);
            if pirop_attack(&mut vm, &v.image, &k).is_success() {
                successes += 1;
            }
        }
        assert_eq!(successes, 0);
    }
}
