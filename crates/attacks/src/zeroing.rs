//! The return-address zeroing side channel of paper §7.3, and the two
//! mitigations the paper proposes against the remaining attack
//! surface: load-time re-randomization and BTRA consistency checking.
//!
//! > "an attacker could use the corruption of potential return
//! > addresses as a side channel. For example, by overwriting selected
//! > return address candidates with zero and observing whether the
//! > process crashes, the attacker could learn the location of the
//! > real return address."
//!
//! The attack uses Malicious Thread Blocking *live*: each probe holds a
//! fresh worker (same image — a restarting pool) at the blocking point,
//! zeroes one return-address candidate in the held frame, releases the
//! thread, and watches what happens:
//!
//! * the worker finishes cleanly → the candidate was a BTRA (never
//!   dereferenced);
//! * the worker crashes → the candidate was the real return address;
//! * a booby trap fires → with consistency checking enabled, the
//!   corruption itself was caught before it taught the attacker
//!   anything.

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::Module;
use r2c_vm::image::Region;
use r2c_vm::{ExitStatus, Image, MachineKind, Vm, VmConfig};

/// Result of a zeroing campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZeroingResult {
    /// The attacker identified the return-address slot after this many
    /// corruption probes, undetected.
    FoundRa {
        /// Probes spent.
        probes: u32,
    },
    /// A booby trap / guard page fired first (defender reacts).
    Detected {
        /// Probes spent before detection.
        probes: u32,
    },
    /// All candidates exhausted without a crash (attack failed).
    Exhausted,
}

fn probe_vm(image: &Image) -> Vm {
    let cfg = VmConfig {
        insn_budget: 50_000_000,
        break_on_probe: true,
        ..VmConfig::new(MachineKind::EpycRome.config())
    };
    Vm::new(image, cfg)
}

/// Runs the zeroing side channel against a (crash-restarting,
/// non-re-randomizing) worker pool running `image`.
pub fn zeroing_attack(image: &Image) -> ZeroingResult {
    // First, hold one worker to enumerate candidates.
    let mut scout = probe_vm(image);
    let out = scout.run();
    if out.status != ExitStatus::Probed {
        return ZeroingResult::Exhausted;
    }
    let snap = scout.probes[0].clone();
    let words: Vec<u64> = snap
        .bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let candidates: Vec<usize> = words
        .iter()
        .enumerate()
        .filter(|(_, &w)| image.layout.region_of(w) == Some(Region::Text))
        .map(|(i, _)| i)
        .collect();

    // The restarting pool: the scout VM doubles as the worker, reset to
    // the image's load state before every probe (same image, no
    // re-randomization; the reset is audited to leak nothing between
    // probes).
    let mut worker = scout;
    for (attempt, &slot) in candidates.iter().enumerate() {
        let probes = attempt as u32 + 1;
        worker.reset_to_image();
        if worker.run().status != ExitStatus::Probed {
            continue;
        }
        let addr = worker.probes[0].rsp + 8 * slot as u64;
        if worker.attacker_write_u64(addr, 0).is_err() {
            continue;
        }
        // Release the thread and observe.
        match worker.resume().status {
            ExitStatus::Exited(_) => {
                // Survived: the candidate was a decoy; next probe.
            }
            ExitStatus::Faulted(f) if f.is_detection() => {
                return ZeroingResult::Detected { probes };
            }
            ExitStatus::Faulted(_) => {
                // Crash without detection: the zeroed slot was load-
                // bearing — the real return address.
                return ZeroingResult::FoundRa { probes };
            }
            ExitStatus::Probed => {
                // Paused again (later probe in the same run); treat as
                // survival.
            }
        }
    }
    ZeroingResult::Exhausted
}

/// Blind-ROP (§4.1) against a worker pool with **load-time
/// re-randomization** (the §7.3 mitigation): every restart gets a
/// freshly diversified image, so information from one crash is useless
/// against the next worker.
pub fn blind_rop_rerandomizing(
    module: &Module,
    cfg: R2cConfig,
    max_probes: u32,
) -> crate::blindrop::BlindRopResult {
    use crate::blindrop::{BlindOutcome, BlindRopResult};
    use crate::victim::{privileged_fired_with_magic, MAGIC_ARG};

    // The attacker leaks a code pointer from worker 0 and scans from it
    // — but every subsequent worker has a different layout.
    let first = R2cCompiler::new(cfg.with_seed(1_000_000))
        .build(module)
        .unwrap();
    let vm = crate::victim::run_victim(&first);
    let (_rsp, words) = crate::knowledge::probe_words(&vm);
    let start = words
        .iter()
        .copied()
        .find(|&w| first.layout.region_of(w) == Some(Region::Text))
        .unwrap_or(first.layout.text_base);

    let mut probes = 0;
    let mut step: i64 = 0;
    while probes < max_probes {
        let candidate = (start & !15).wrapping_add_signed(16 * step);
        step = if step >= 0 { -(step + 1) } else { -step };
        probes += 1;
        // Restart = rebuild with a fresh seed: load-time
        // re-randomization.
        let image = R2cCompiler::new(cfg.with_seed(1_000_000 + probes as u64))
            .build(module)
            .unwrap();
        let mut worker = Vm::new(
            &image,
            VmConfig {
                insn_budget: 200_000,
                ..VmConfig::new(MachineKind::EpycRome.config())
            },
        );
        let out = worker.call(candidate, &[MAGIC_ARG as u64]);
        match out.status {
            ExitStatus::Exited(_) if privileged_fired_with_magic(&worker) => {
                return BlindRopResult {
                    outcome: BlindOutcome::Success,
                    probes,
                };
            }
            ExitStatus::Faulted(f) if f.is_detection() => {
                return BlindRopResult {
                    outcome: BlindOutcome::Detected,
                    probes,
                };
            }
            _ => {}
        }
    }
    BlindRopResult {
        outcome: BlindOutcome::Exhausted,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::victim_module;
    use r2c_core::DiversifyConfig;

    fn build(cfg: R2cConfig) -> Image {
        R2cCompiler::new(cfg).build(&victim_module()).unwrap()
    }

    #[test]
    fn zeroing_side_channel_finds_ra_without_consistency_checks() {
        // §7.3: without the mitigation, the campaign eventually zeroes
        // the true RA and observes the crash. (Individual probes that
        // hit BTDP-adjacent state may detect first on some seeds, so
        // check the aggregate.)
        let mut found = 0;
        let n = 6;
        for seed in 0..n {
            let image = build(R2cConfig::full(seed));
            if matches!(zeroing_attack(&image), ZeroingResult::FoundRa { .. }) {
                found += 1;
            }
        }
        assert!(
            found >= n / 2,
            "zeroing should usually locate the RA ({found}/{n})"
        );
    }

    #[test]
    fn consistency_checks_detect_zeroing() {
        let mut detected = 0;
        let mut found = 0;
        let n = 8;
        for seed in 0..n {
            let cfg = R2cConfig {
                diversify: DiversifyConfig::hardened(3),
                seed,
                check: cfg!(debug_assertions),
                check_decode: cfg!(debug_assertions),
            };
            let image = build(cfg);
            match zeroing_attack(&image) {
                ZeroingResult::Detected { .. } => detected += 1,
                ZeroingResult::FoundRa { .. } => found += 1,
                ZeroingResult::Exhausted => {}
            }
        }
        assert!(
            detected > found,
            "consistency checking should usually catch the corruption \
             (detected {detected}, found {found} of {n})"
        );
    }

    #[test]
    fn hardened_config_still_correct() {
        // The consistency-check instrumentation must not break programs.
        let module = victim_module();
        let expected = r2c_ir::interpret(&module, "main", 10_000_000).unwrap();
        for seed in 0..4 {
            let cfg = R2cConfig {
                diversify: DiversifyConfig::hardened(2),
                seed,
                check: cfg!(debug_assertions),
                check_decode: cfg!(debug_assertions),
            };
            let image = R2cCompiler::new(cfg).build(&module).unwrap();
            let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
            let out = vm.run();
            assert_eq!(out.status, ExitStatus::Exited(expected.ret), "seed {seed}");
            assert!(
                vm.detections().is_empty(),
                "seed {seed}: benign run trapped"
            );
        }
    }

    #[test]
    fn rerandomization_defeats_blind_rop() {
        use crate::blindrop::BlindOutcome;
        let module = victim_module();
        let r = blind_rop_rerandomizing(&module, R2cConfig::full(0), 150);
        assert_ne!(
            r.outcome,
            BlindOutcome::Success,
            "re-randomized workers must not fall to a positional scan: {r:?}"
        );
    }
}
