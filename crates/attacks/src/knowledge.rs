//! The attacker's static knowledge of the target binary.
//!
//! The paper's threat model lets the attacker know the *program* — they
//! can run and inspect their own copy — but not the victim's ASLR bases
//! or diversification seed. We model this faithfully: the attacker
//! builds a **local variant** of the same program with the same
//! configuration but their own seed, runs it, and extracts the offsets
//! and deltas their attack needs (stack-profile offsets, code deltas,
//! global-layout deltas). Against an undiversified target those
//! transfer exactly; against an R²C target each diversification breaks
//! the corresponding transfer.

use r2c_core::R2cConfig;
use r2c_vm::{Image, Insn, VAddr};

use crate::victim::{build_victim, run_victim, ANCHOR};

/// Offsets and deltas profiled from the attacker's local copy.
#[derive(Clone, Debug)]
pub struct AttackerKnowledge {
    /// Byte offset from the probe-time `rsp` to the slot holding the
    /// handler's return address.
    pub ra_slot_off: Option<u64>,
    /// Byte offset from probe `rsp` to the slot holding the
    /// `privileged` function pointer.
    pub fp_slot_off: Option<u64>,
    /// Byte offset from probe `rsp` to the anchor local.
    pub anchor_slot_off: Option<u64>,
    /// `handler`'s return-address value minus `main`'s entry (lets the
    /// attacker turn a leaked return address into a code base).
    pub ra_to_main: i64,
    /// `privileged` entry minus `main` entry.
    pub priv_rel_main: i64,
    /// `dispatch` entry minus `main` entry.
    pub dispatch_rel_main: i64,
    /// `dispatch` entry minus `privileged` entry (to derive the reuse
    /// target from a harvested `privileged` pointer).
    pub dispatch_rel_priv: i64,
    /// Gadget address (the `ret` of `helper`) minus `helper` entry.
    pub gadget_rel_helper: i64,
    /// `helper` entry minus `main` entry.
    pub helper_rel_main: i64,
    /// `default_param` address minus `banner` address (data-section
    /// delta for attack C).
    pub default_rel_banner: i64,
    /// Low 12 bits of the gadget address (PIROP's page-offset
    /// knowledge; sub-page bits survive page-granular ASLR).
    pub gadget_low12: u16,
    /// `ret`-gadget addresses relative to `main`, one per gadget
    /// function (helper, privileged, dispatch, handler) — the material
    /// for a multi-gadget ROP chain.
    pub ret_gadgets_rel_main: Vec<i64>,
}

/// Return-address value of the (single) `call handler` site: the
/// address of the instruction after that call.
pub fn handler_call_ra(image: &Image) -> VAddr {
    let handler = image.func_addr("handler");
    for (i, insn) in image.insns.iter().enumerate() {
        if let Insn::Call { target } = insn {
            if *target == handler {
                return image.insn_addrs[i] + insn.len();
            }
        }
    }
    panic!("no call to handler found");
}

/// Address of the `ret` instruction of the named function — our
/// structural "gadget" (a free-branch instruction at a
/// variant-dependent offset).
pub fn ret_gadget_addr(image: &Image, func: &str) -> VAddr {
    let sym = image.symbol(func).expect("function symbol");
    for (i, insn) in image.insns.iter().enumerate() {
        let a = image.insn_addrs[i];
        if a >= sym.addr && a < sym.addr + sym.size && matches!(insn, Insn::Ret) {
            return a;
        }
    }
    panic!("no ret in {func}");
}

/// Words of the first probe snapshot.
pub fn probe_words(vm: &r2c_vm::Vm) -> (VAddr, Vec<u64>) {
    let snap = &vm.probes[0];
    let words = snap
        .bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    (snap.rsp, words)
}

impl AttackerKnowledge {
    /// Profiles a local variant built with `cfg` reseeded to
    /// `attacker_seed` (the attacker's own build of the same program).
    pub fn profile(cfg: &R2cConfig, attacker_seed: u64) -> AttackerKnowledge {
        let local = build_victim(cfg.with_seed(attacker_seed));
        let vm = run_victim(&local.image);
        let image = &local.image;
        let (_rsp, words) = probe_words(&vm);

        // Ground truth on the attacker's own copy: they know their own
        // layout precisely.
        let ra_value = handler_call_ra(image);
        // Under code-pointer hiding the value stored by `funcref` is the
        // trampoline, which is what appears on the stack; deltas between
        // *visible* pointers must likewise be trampoline-to-trampoline
        // (the trampoline table is laid out in function order, so those
        // deltas are exactly as stable as entry deltas).
        let visible = |name: &str| {
            image
                .symbol(&format!("__tramp_{name}"))
                .map(|s| s.addr)
                .unwrap_or_else(|| image.func_addr(name))
        };
        let priv_addr = visible("privileged");
        let main_addr = image.func_addr("main");
        let dispatch_addr = image.func_addr("dispatch");
        let helper_addr = image.func_addr("helper");
        let gadget = ret_gadget_addr(image, "helper");
        let banner = image.func_addr("banner");
        let default_param = image.func_addr("default_param");

        let find = |v: u64| words.iter().position(|&w| w == v).map(|i| 8 * i as u64);
        AttackerKnowledge {
            ra_slot_off: find(ra_value),
            fp_slot_off: find(priv_addr),
            anchor_slot_off: find(ANCHOR as u64),
            ra_to_main: ra_value as i64 - main_addr as i64,
            priv_rel_main: priv_addr as i64 - main_addr as i64,
            dispatch_rel_main: dispatch_addr as i64 - main_addr as i64,
            dispatch_rel_priv: visible("dispatch") as i64 - priv_addr as i64,
            gadget_rel_helper: gadget as i64 - helper_addr as i64,
            helper_rel_main: helper_addr as i64 - main_addr as i64,
            default_rel_banner: default_param as i64 - banner as i64,
            gadget_low12: (gadget & 0xfff) as u16,
            ret_gadgets_rel_main: GADGET_FUNCS
                .iter()
                .map(|f| ret_gadget_addr(image, f) as i64 - main_addr as i64)
                .collect(),
        }
    }
}

/// The functions whose `ret` instructions serve as chain gadgets.
pub const GADGET_FUNCS: [&str; 4] = ["helper", "privileged", "dispatch", "handler"];

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_core::R2cConfig;

    #[test]
    fn baseline_profile_finds_everything() {
        let k = AttackerKnowledge::profile(&R2cConfig::baseline(0), 1234);
        assert!(
            k.ra_slot_off.is_some(),
            "return address locatable on unprotected stack"
        );
        assert!(k.fp_slot_off.is_some(), "function pointer locatable");
        assert!(k.anchor_slot_off.is_some(), "anchor locatable");
        assert_ne!(k.default_rel_banner, 0);
    }

    #[test]
    fn baseline_offsets_transfer_between_variants() {
        // Without diversification the profiled offsets are the same in
        // any other variant — the software monoculture.
        let a = AttackerKnowledge::profile(&R2cConfig::baseline(0), 1);
        let b = AttackerKnowledge::profile(&R2cConfig::baseline(0), 2);
        assert_eq!(a.ra_slot_off, b.ra_slot_off);
        assert_eq!(a.fp_slot_off, b.fp_slot_off);
        assert_eq!(a.ra_to_main, b.ra_to_main);
        assert_eq!(a.default_rel_banner, b.default_rel_banner);
        assert_eq!(a.gadget_rel_helper, b.gadget_rel_helper);
    }

    #[test]
    fn full_r2c_offsets_do_not_transfer() {
        let mut ra_differs = false;
        let mut data_differs = false;
        let mut code_differs = false;
        let base = AttackerKnowledge::profile(&R2cConfig::full(0), 100);
        for seed in 101..106 {
            let k = AttackerKnowledge::profile(&R2cConfig::full(0), seed);
            ra_differs |= k.ra_slot_off != base.ra_slot_off;
            data_differs |= k.default_rel_banner != base.default_rel_banner;
            code_differs |= k.gadget_rel_helper != base.gadget_rel_helper
                || k.priv_rel_main != base.priv_rel_main;
        }
        assert!(ra_differs, "BTRAs must move the return-address slot");
        assert!(data_differs, "global shuffling must change data deltas");
        assert!(code_differs, "code randomization must change code deltas");
    }
}
