//! Blind ROP against a crash-restarting worker (paper §4.1, §7.3).
//!
//! Some servers (nginx, Apache, OpenSSH) restart crashed workers
//! without re-randomizing the binary image, so an attacker can probe
//! addresses one by one, treating each crash as information. We model
//! the worker as a fresh [`Vm`] per probe *on the same image* — same
//! layout every restart.
//!
//! The attacker scans for the `privileged` function by hijacking
//! candidate addresses with the magic argument and watching for the
//! marker output. Against R²C, booby-trap functions are scattered
//! through the text section, so the scan trips a trap long before it
//! finds the target; a reactive defender re-randomizes or blocks the
//! attacker at the first detection.

use r2c_vm::image::Region;
use r2c_vm::{Image, MachineKind, Vm, VmConfig};

use crate::knowledge::probe_words;
use crate::outcome::Outcome;
use crate::victim::{privileged_fired_with_magic, run_victim, MAGIC_ARG};

/// Result of a Blind-ROP campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlindRopResult {
    /// How the campaign ended.
    pub outcome: BlindOutcome,
    /// Probes issued (worker restarts consumed).
    pub probes: u32,
}

/// Terminal states of the campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlindOutcome {
    /// Found and invoked `privileged(MAGIC_ARG)` undetected.
    Success,
    /// A booby trap / guard page fired: the defender reacts, campaign
    /// over.
    Detected,
    /// Probe budget exhausted without success.
    Exhausted,
}

/// Runs a Blind-ROP scan with at most `max_probes` worker restarts.
pub fn blind_rop(image: &Image, max_probes: u32) -> BlindRopResult {
    // One initial leak gives a starting point inside the text section
    // (any code pointer from the stack).
    let vm = run_victim(image);
    let (_rsp, words) = probe_words(&vm);
    let start = words
        .iter()
        .copied()
        .find(|&w| image.layout.region_of(w) == Some(Region::Text))
        .unwrap_or(image.layout.text_base);
    drop(vm);

    // Scan outward from the leak at 16-byte granularity (function
    // entries are 16-aligned), alternating directions.
    let mut probes = 0;
    let mut step: i64 = 0;
    while probes < max_probes {
        let candidate = (start & !15).wrapping_add_signed(16 * step);
        step = if step >= 0 { -(step + 1) } else { -step };
        if candidate < image.layout.text_base || candidate >= image.layout.text_end {
            continue;
        }
        probes += 1;
        // Fresh worker (restart), same image: no re-randomization. A
        // small budget models the watchdog killing hung workers.
        let mut worker = Vm::new(
            image,
            VmConfig {
                machine: MachineKind::EpycRome.config(),
                insn_budget: 200_000,
                break_on_probe: false,
            },
        );
        let out = worker.call(candidate, &[MAGIC_ARG as u64]);
        match out.status {
            r2c_vm::ExitStatus::Exited(_) if privileged_fired_with_magic(&worker) => {
                return BlindRopResult {
                    outcome: BlindOutcome::Success,
                    probes,
                };
            }
            r2c_vm::ExitStatus::Faulted(f) if f.is_detection() => {
                return BlindRopResult {
                    outcome: BlindOutcome::Detected,
                    probes,
                };
            }
            // Ordinary crash or silent run: the worker restarts and the
            // attacker continues.
            _ => {}
        }
    }
    BlindRopResult {
        outcome: BlindOutcome::Exhausted,
        probes,
    }
}

/// Convenience conversion for tallying.
pub fn as_outcome(r: &BlindRopResult) -> Outcome {
    match r.outcome {
        BlindOutcome::Success => Outcome::Success,
        BlindOutcome::Detected => Outcome::Detected,
        BlindOutcome::Exhausted => Outcome::Failed("probe budget exhausted"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::build_victim;
    use r2c_core::R2cConfig;

    #[test]
    fn blind_rop_succeeds_on_unprotected() {
        let v = build_victim(R2cConfig::baseline(21));
        let r = blind_rop(&v.image, 4000);
        assert_eq!(r.outcome, BlindOutcome::Success, "{r:?}");
        assert!(r.probes > 0);
    }

    #[test]
    fn blind_rop_detected_quickly_under_r2c() {
        // The scan sweeps the text section; booby traps vastly
        // outnumber useful targets, so almost every campaign is
        // detected, and early. (A lucky scan can still stumble on the
        // target first — booby traps are probabilistic, §7.2.1 — so we
        // assert on the aggregate.)
        let mut detected_probe_counts = Vec::new();
        let runs = 8;
        for seed in 0..runs {
            let v = build_victim(R2cConfig::full(seed));
            let r = blind_rop(&v.image, 4000);
            if r.outcome == BlindOutcome::Detected {
                detected_probe_counts.push(r.probes);
            }
        }
        assert!(
            detected_probe_counts.len() as u32 >= runs as u32 - 1,
            "almost all campaigns must be detected ({}/{runs})",
            detected_probe_counts.len()
        );
        let avg: f64 = detected_probe_counts.iter().map(|&p| p as f64).sum::<f64>()
            / detected_probe_counts.len() as f64;
        assert!(
            avg < 600.0,
            "detection should come early (avg {avg} probes)"
        );
    }
}
