//! Blind ROP against a crash-restarting worker (paper §4.1, §7.3).
//!
//! Some servers (nginx, Apache, OpenSSH) restart crashed workers
//! without re-randomizing the binary image, so an attacker can probe
//! addresses one by one, treating each crash as information. We model
//! the restart with [`Vm::reset_to_image`]: the same image every time,
//! rolled back to its load state between probes. The reset is audited —
//! no detections, [`ExecStats`](r2c_vm::ExecStats), heap state or
//! output survive it (see the `worker_restart_leaks_nothing` test), so
//! probing a reset worker is observationally identical to probing a
//! freshly constructed one, only without the per-probe rebuild cost.
//!
//! The attacker scans for the `privileged` function by hijacking
//! candidate addresses with the magic argument and watching for the
//! marker output. Against R²C, booby-trap functions are scattered
//! through the text section, so the scan trips a trap long before it
//! finds the target; a reactive defender re-randomizes or blocks the
//! attacker at the first detection.

use r2c_vm::image::Region;
use r2c_vm::{Image, MachineKind, Vm, VmConfig};

use crate::knowledge::probe_words;
use crate::outcome::Outcome;
use crate::victim::{privileged_fired_with_magic, run_victim, MAGIC_ARG};

/// Result of a Blind-ROP campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlindRopResult {
    /// How the campaign ended.
    pub outcome: BlindOutcome,
    /// Probes issued (worker restarts consumed).
    pub probes: u32,
}

/// Terminal states of the campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlindOutcome {
    /// Found and invoked `privileged(MAGIC_ARG)` undetected.
    Success,
    /// A booby trap / guard page fired: the defender reacts, campaign
    /// over.
    Detected,
    /// Probe budget exhausted without success.
    Exhausted,
}

/// Runs a Blind-ROP scan with at most `max_probes` worker restarts.
pub fn blind_rop(image: &Image, max_probes: u32) -> BlindRopResult {
    // One initial leak gives a starting point inside the text section
    // (any code pointer from the stack).
    let vm = run_victim(image);
    let (_rsp, words) = probe_words(&vm);
    let start = words
        .iter()
        .copied()
        .find(|&w| image.layout.region_of(w) == Some(Region::Text))
        .unwrap_or(image.layout.text_base);
    drop(vm);

    // The worker pool: one VM, reset to the image's load state per
    // probe (restart without re-randomization). A small budget models
    // the watchdog killing hung workers.
    let mut worker = Vm::new(
        image,
        VmConfig {
            insn_budget: 200_000,
            ..VmConfig::new(MachineKind::EpycRome.config())
        },
    );

    // Scan outward from the leak at 16-byte granularity (function
    // entries are 16-aligned), alternating directions.
    let mut probes = 0;
    let mut step: i64 = 0;
    while probes < max_probes {
        let candidate = (start & !15).wrapping_add_signed(16 * step);
        step = if step >= 0 { -(step + 1) } else { -step };
        if candidate < image.layout.text_base || candidate >= image.layout.text_end {
            continue;
        }
        if probes > 0 {
            worker.reset_to_image();
        }
        probes += 1;
        let out = worker.call(candidate, &[MAGIC_ARG as u64]);
        match out.status {
            r2c_vm::ExitStatus::Exited(_) if privileged_fired_with_magic(&worker) => {
                return BlindRopResult {
                    outcome: BlindOutcome::Success,
                    probes,
                };
            }
            r2c_vm::ExitStatus::Faulted(f) if f.is_detection() => {
                return BlindRopResult {
                    outcome: BlindOutcome::Detected,
                    probes,
                };
            }
            // Ordinary crash or silent run: the worker restarts and the
            // attacker continues.
            _ => {}
        }
    }
    BlindRopResult {
        outcome: BlindOutcome::Exhausted,
        probes,
    }
}

/// Convenience conversion for tallying.
pub fn as_outcome(r: &BlindRopResult) -> Outcome {
    match r.outcome {
        BlindOutcome::Success => Outcome::Success,
        BlindOutcome::Detected => Outcome::Detected,
        BlindOutcome::Exhausted => Outcome::Failed("probe budget exhausted"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::build_victim;
    use r2c_core::R2cConfig;
    use r2c_vm::{ExitStatus, SymbolKind};

    /// The audit behind the reset-based worker pool: after
    /// `reset_to_image`, *nothing* from the previous probe survives —
    /// not detections, not stats, not heap or output state — and a
    /// rebooted worker behaves bit-identically to a fresh one. If a
    /// future `Vm` field is forgotten in the reset, this test catches
    /// the leak.
    #[test]
    fn worker_restart_leaks_nothing() {
        let v = build_victim(R2cConfig::full(2));
        let cfg = VmConfig::new(MachineKind::EpycRome.config());
        let mut fresh = Vm::new(&v.image, cfg);
        let fresh_out = fresh.run();

        let mut worker = Vm::new(&v.image, cfg);
        assert!(worker.run().status.is_exit());
        // Dirty the output channel (the compromise oracle reads it) ...
        let priv_addr = v.image.symbol("privileged").unwrap().addr;
        assert!(worker.call(priv_addr, &[MAGIC_ARG as u64]).status.is_exit());
        // ... then trip a booby trap so a detection is on record.
        let trap = v
            .image
            .symbols
            .iter()
            .find(|s| s.kind == SymbolKind::BoobyTrap)
            .expect("full config plants booby traps")
            .addr;
        let out = worker.call(trap, &[MAGIC_ARG as u64]);
        assert!(matches!(out.status, ExitStatus::Faulted(f) if f.is_detection()));
        assert!(!worker.detections().is_empty());
        assert!(worker.heap.in_use() > 0, "victim leaves live heap objects");
        assert!(
            !worker.output.is_empty(),
            "privileged call must emit output"
        );
        assert!(!worker.probes.is_empty(), "victim plants stack probes");

        worker.reset_to_image();
        assert!(
            worker.detections().is_empty(),
            "stale detection leaked across the restart"
        );
        assert_eq!(worker.stats().instructions, 0, "stale ExecStats leaked");
        assert_eq!(worker.heap.in_use(), 0, "stale heap state leaked");
        assert_eq!(worker.heap.alloc_count, 0);
        assert!(worker.output.is_empty(), "stale output leaked");
        assert!(worker.probes.is_empty(), "stale probe snapshots leaked");

        let out2 = worker.run();
        assert_eq!(out2.status, fresh_out.status);
        assert_eq!(out2.stats, fresh_out.stats, "restarted worker diverged");
        assert_eq!(worker.output, fresh.output);
        assert_eq!(worker.detections(), fresh.detections());
    }

    /// The reset-based pool must be observationally identical to the
    /// old (slow) fresh-`Vm`-per-probe model.
    #[test]
    fn reset_pool_matches_fresh_vm_per_probe() {
        fn fresh_vm_reference(image: &Image, max_probes: u32) -> BlindRopResult {
            let vm = run_victim(image);
            let (_rsp, words) = probe_words(&vm);
            let start = words
                .iter()
                .copied()
                .find(|&w| image.layout.region_of(w) == Some(Region::Text))
                .unwrap_or(image.layout.text_base);
            drop(vm);
            let mut probes = 0;
            let mut step: i64 = 0;
            while probes < max_probes {
                let candidate = (start & !15).wrapping_add_signed(16 * step);
                step = if step >= 0 { -(step + 1) } else { -step };
                if candidate < image.layout.text_base || candidate >= image.layout.text_end {
                    continue;
                }
                probes += 1;
                let mut worker = Vm::new(
                    image,
                    VmConfig {
                        insn_budget: 200_000,
                        ..VmConfig::new(MachineKind::EpycRome.config())
                    },
                );
                let out = worker.call(candidate, &[MAGIC_ARG as u64]);
                match out.status {
                    r2c_vm::ExitStatus::Exited(_) if privileged_fired_with_magic(&worker) => {
                        return BlindRopResult {
                            outcome: BlindOutcome::Success,
                            probes,
                        };
                    }
                    r2c_vm::ExitStatus::Faulted(f) if f.is_detection() => {
                        return BlindRopResult {
                            outcome: BlindOutcome::Detected,
                            probes,
                        };
                    }
                    _ => {}
                }
            }
            BlindRopResult {
                outcome: BlindOutcome::Exhausted,
                probes,
            }
        }

        for (cfg, budget) in [
            (R2cConfig::baseline(21), 2000),
            (R2cConfig::full(4), 1500),
            (R2cConfig::full(9), 1500),
        ] {
            let v = build_victim(cfg);
            assert_eq!(
                blind_rop(&v.image, budget),
                fresh_vm_reference(&v.image, budget),
                "reset-based pool diverged from fresh-VM pool under {cfg:?}"
            );
        }
    }

    #[test]
    fn blind_rop_succeeds_on_unprotected() {
        let v = build_victim(R2cConfig::baseline(21));
        let r = blind_rop(&v.image, 4000);
        assert_eq!(r.outcome, BlindOutcome::Success, "{r:?}");
        assert!(r.probes > 0);
    }

    #[test]
    fn blind_rop_detected_quickly_under_r2c() {
        // The scan sweeps the text section; booby traps vastly
        // outnumber useful targets, so almost every campaign is
        // detected, and early. (A lucky scan can still stumble on the
        // target first — booby traps are probabilistic, §7.2.1 — so we
        // assert on the aggregate.)
        let mut detected_probe_counts = Vec::new();
        let runs = 8;
        for seed in 0..runs {
            let v = build_victim(R2cConfig::full(seed));
            let r = blind_rop(&v.image, 4000);
            if r.outcome == BlindOutcome::Detected {
                detected_probe_counts.push(r.probes);
            }
        }
        assert!(
            detected_probe_counts.len() as u32 >= runs as u32 - 1,
            "almost all campaigns must be detected ({}/{runs})",
            detected_probe_counts.len()
        );
        let avg: f64 = detected_probe_counts.iter().map(|&p| p as f64).sum::<f64>()
            / detected_probe_counts.len() as f64;
        assert!(
            avg < 600.0,
            "detection should come early (avg {avg} probes)"
        );
    }
}
