//! # r2c-attacks — the attacker toolkit
//!
//! End-to-end implementations of the code-reuse attacks the paper
//! defends against, run against real program images inside the VM:
//!
//! * [`aocr`] — Address-Oblivious Code Reuse: stack profiling via
//!   Malicious Thread Blocking, heap-pointer harvesting by value-range
//!   clustering, data-section discovery, default-parameter corruption,
//!   and whole-function reuse (paper §2.3, attacks A/B/C).
//! * [`rop`] — classic ROP: leak a return address, infer the containing
//!   function and gadget addresses from static knowledge of the binary.
//! * [`jitrop`] — JIT-ROP: direct code disclosure (defeated by
//!   execute-only memory) and indirect disclosure through harvested
//!   code pointers (§2.1).
//! * [`blindrop`] — Blind ROP against a crash-restarting worker that
//!   never re-randomizes (§4.1/§7.3).
//! * [`pirop`] — Position-Independent ROP via partial pointer
//!   corruption (§7.2.5).
//!
//! All attacks follow the paper's threat model (§3): the attacker has
//! arbitrary read/write (permission-checked — guard pages still fault),
//! can deterministically leak the stack of a blocked thread, knows the
//! program binary (modelled by profiling an *attacker-local variant* of
//! the same program, see [`knowledge`]), but does not know the victim's
//! ASLR bases or diversification seed.
//!
//! Every attack returns an [`Outcome`]: success, crash, or — the
//! reactive part — *detection* by a booby trap or BTDP guard page.

pub mod aocr;
pub mod blindrop;
pub mod jitrop;
pub mod knowledge;
pub mod matrix;
pub mod outcome;
pub mod pirop;
pub mod rop;
pub mod victim;
pub mod zeroing;

pub use knowledge::AttackerKnowledge;
pub use matrix::{blind_rop_stats, matrix_cell, matrix_cells, BlindRopStats, MatrixCell};
pub use outcome::Outcome;
pub use victim::{build_victim, victim_module, VictimBuild, MAGIC_ARG, PRIV_MARKER};
