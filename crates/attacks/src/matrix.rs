//! The §7.2 attack matrix as a library.
//!
//! The `report_security` bench binary and the golden security-regression
//! suite (`tests/security_golden.rs`) must agree on what "the attack
//! matrix" *is*, so the cell definitions live here: the canonical attack
//! list, a deterministic per-cell Monte-Carlo driver, and the Blind-ROP
//! campaign tally. Every number is a pure function of its arguments —
//! the attack RNG is seeded per cell ([`CELL_RNG_SEED`]), victims use
//! seeds `0..trials`, and the attacker profiles a fixed out-of-band
//! variant ([`PROFILE_SEED`]) — so two runs anywhere agree bit-for-bit.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use r2c_core::R2cConfig;

use crate::blindrop::{blind_rop, BlindOutcome};
use crate::knowledge::AttackerKnowledge;
use crate::outcome::{Outcome, Tally};
use crate::victim::{build_victim, run_victim};
use crate::{aocr, jitrop, pirop, rop};

/// Canonical row order of the §7.2 matrix.
pub const MATRIX_ATTACKS: [&str; 5] = [
    "ROP",
    "JIT-ROP (direct)",
    "JIT-ROP (indirect)",
    "AOCR",
    "PIROP",
];

/// Seed of the attacker-side profiling variant (outside `0..trials`, so
/// the attacker never profiles the victim's own variant).
pub const PROFILE_SEED: u64 = 0xA77AC0;

/// Seed of each cell's attack RNG.
pub const CELL_RNG_SEED: u64 = 0x5ec;

/// One `(attack, configuration)` cell of the matrix.
#[derive(Clone, Copy, Debug)]
pub struct MatrixCell {
    /// Attack name (one of [`MATRIX_ATTACKS`]).
    pub attack: &'static str,
    /// `false` = unprotected baseline, `true` = full R²C.
    pub protected: bool,
    /// Aggregated outcomes over the cell's trials.
    pub tally: Tally,
}

/// The 10 `(attack, protected)` pairs in canonical order — each attack
/// against the unprotected baseline, then against full R²C. Callers can
/// fan the pairs out across threads; each cell is independent.
pub fn matrix_cells() -> Vec<(&'static str, bool)> {
    MATRIX_ATTACKS
        .iter()
        .flat_map(|&a| [(a, false), (a, true)])
        .collect()
}

/// Runs one matrix cell: `trials` attempts, one per independently
/// diversified victim (seeds `0..trials`), against a shared attacker
/// profile and a per-cell attack RNG.
pub fn matrix_cell(attack: &'static str, protected: bool, trials: u64) -> MatrixCell {
    let cfg = if protected {
        R2cConfig::full(0)
    } else {
        R2cConfig::baseline(0)
    };
    let k = AttackerKnowledge::profile(&cfg, PROFILE_SEED);
    let mut tally = Tally::default();
    let mut rng = SmallRng::seed_from_u64(CELL_RNG_SEED);
    for seed in 0..trials {
        let v = build_victim(cfg.with_seed(seed));
        let mut vm = run_victim(&v.image);
        let out: Outcome = match attack {
            "ROP" => rop::classic_rop(&mut vm, &v.image, &k, 4),
            "JIT-ROP (direct)" => jitrop::direct_jitrop(&mut vm, &v.image),
            "JIT-ROP (indirect)" => jitrop::indirect_jitrop(&mut vm, &v.image, &k, &mut rng),
            "AOCR" => aocr::aocr_attack(&mut vm, &v.image, &k, &mut rng),
            "PIROP" => pirop::pirop_attack(&mut vm, &v.image, &k),
            other => panic!("unknown matrix attack {other:?}"),
        };
        tally.add(&out);
    }
    MatrixCell {
        attack,
        protected,
        tally,
    }
}

/// Aggregate of repeated Blind-ROP campaigns (§4.1/§7.3), one per
/// independently diversified victim.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlindRopStats {
    /// Campaigns run.
    pub campaigns: u32,
    /// Campaigns that located and invoked `privileged` undetected.
    pub successes: u32,
    /// Campaigns stopped by a booby trap / guard page.
    pub detected: u32,
    /// Campaigns that exhausted the probe budget.
    pub exhausted: u32,
    /// Probes consumed by each successful campaign.
    pub probes_to_success: Vec<u32>,
    /// Probes consumed before each detection.
    pub probes_to_detect: Vec<u32>,
}

impl BlindRopStats {
    /// Mean probes across successful campaigns, if any succeeded.
    pub fn avg_probes_to_success(&self) -> Option<f64> {
        avg(&self.probes_to_success)
    }

    /// Mean probes across detected campaigns, if any were detected.
    pub fn avg_probes_to_detect(&self) -> Option<f64> {
        avg(&self.probes_to_detect)
    }
}

fn avg(xs: &[u32]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64)
    }
}

/// Runs `campaigns` Blind-ROP campaigns (victim seeds `0..campaigns`)
/// with at most `max_probes` worker restarts each.
pub fn blind_rop_stats(protected: bool, campaigns: u64, max_probes: u32) -> BlindRopStats {
    let cfg = if protected {
        R2cConfig::full(0)
    } else {
        R2cConfig::baseline(0)
    };
    let mut stats = BlindRopStats {
        campaigns: campaigns as u32,
        ..BlindRopStats::default()
    };
    for seed in 0..campaigns {
        let v = build_victim(cfg.with_seed(seed));
        let r = blind_rop(&v.image, max_probes);
        match r.outcome {
            BlindOutcome::Success => {
                stats.successes += 1;
                stats.probes_to_success.push(r.probes);
            }
            BlindOutcome::Detected => {
                stats.detected += 1;
                stats.probes_to_detect.push(r.probes);
            }
            BlindOutcome::Exhausted => stats.exhausted += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_deterministic() {
        let a = matrix_cell("ROP", false, 3);
        let b = matrix_cell("ROP", false, 3);
        assert_eq!(a.tally, b.tally);
        let s = blind_rop_stats(false, 2, 500);
        assert_eq!(s, blind_rop_stats(false, 2, 500));
        assert_eq!(s.campaigns, 2);
        assert_eq!(s.successes + s.detected + s.exhausted, 2);
    }

    #[test]
    fn cell_list_covers_every_attack_twice() {
        let cells = matrix_cells();
        assert_eq!(cells.len(), 2 * MATRIX_ATTACKS.len());
        for &a in &MATRIX_ATTACKS {
            assert!(cells.contains(&(a, false)) && cells.contains(&(a, true)));
        }
    }
}
