//! Attack outcome taxonomy.

use r2c_vm::Fault;

/// How an attack attempt ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The attacker achieved the goal (e.g. called the privileged
    /// function with a controlled argument) without being detected.
    Success,
    /// The attack was *detected*: a booby trap fired or a BTDP guard
    /// page was touched. A reactive defender terminates/re-randomizes
    /// the process at this point (paper §4.2).
    Detected,
    /// The process crashed without a detection event (e.g. wild read of
    /// unmapped memory). Noisy, but not attributable by the reactive
    /// component.
    Crashed(Fault),
    /// The attack ran to completion but did not achieve the goal (e.g.
    /// corrupted the wrong global; called the wrong function).
    Failed(&'static str),
}

impl Outcome {
    /// True for [`Outcome::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Success)
    }

    /// True when the defender learned about the attempt.
    pub fn is_detected(&self) -> bool {
        matches!(self, Outcome::Detected)
    }

    /// Folds a fault into the taxonomy, promoting detection faults.
    pub fn from_fault(f: Fault) -> Outcome {
        if f.is_detection() {
            Outcome::Detected
        } else {
            Outcome::Crashed(f)
        }
    }
}

/// Aggregated Monte-Carlo statistics over repeated attack attempts
/// against independently diversified variants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Attempts that succeeded undetected.
    pub success: u32,
    /// Attempts flagged by a booby trap / guard page.
    pub detected: u32,
    /// Attempts that crashed undetected.
    pub crashed: u32,
    /// Attempts that fizzled without crash or detection.
    pub failed: u32,
}

impl Tally {
    /// Adds one outcome.
    pub fn add(&mut self, o: &Outcome) {
        match o {
            Outcome::Success => self.success += 1,
            Outcome::Detected => self.detected += 1,
            Outcome::Crashed(_) => self.crashed += 1,
            Outcome::Failed(_) => self.failed += 1,
        }
    }

    /// Total attempts recorded.
    pub fn total(&self) -> u32 {
        self.success + self.detected + self.crashed + self.failed
    }

    /// Empirical success rate.
    pub fn success_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.success as f64 / self.total() as f64
        }
    }

    /// Empirical detection rate.
    pub fn detection_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.detected as f64 / self.total() as f64
        }
    }
}

impl std::fmt::Display for Tally {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "success {}/{} ({:.1}%), detected {} ({:.1}%), crashed {}, failed {}",
            self.success,
            self.total(),
            100.0 * self.success_rate(),
            self.detected,
            100.0 * self.detection_rate(),
            self.crashed,
            self.failed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_vm::Perms;

    #[test]
    fn fault_promotion() {
        assert_eq!(
            Outcome::from_fault(Fault::BoobyTrap { addr: 1 }),
            Outcome::Detected
        );
        assert_eq!(
            Outcome::from_fault(Fault::Protection {
                addr: 1,
                perms: Perms::NONE,
                write: false
            }),
            Outcome::Detected
        );
        assert!(matches!(
            Outcome::from_fault(Fault::Unmapped { addr: 1 }),
            Outcome::Crashed(_)
        ));
    }

    #[test]
    fn tally_rates() {
        let mut t = Tally::default();
        t.add(&Outcome::Success);
        t.add(&Outcome::Detected);
        t.add(&Outcome::Detected);
        t.add(&Outcome::Failed("x"));
        assert_eq!(t.total(), 4);
        assert!((t.success_rate() - 0.25).abs() < 1e-12);
        assert!((t.detection_rate() - 0.5).abs() < 1e-12);
    }
}
