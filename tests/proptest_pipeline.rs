//! Property-based testing of the whole pipeline: randomly generated
//! (terminating, memory-safe) IR programs must behave identically under
//! the reference interpreter and under every diversified compilation.
//!
//! The generator produces a module with a pool of functions forming a
//! call DAG (callees have strictly larger indices, so no recursion),
//! straight-line arithmetic with bounded loops, and in-bounds global
//! array traffic — enough variety to exercise register allocation,
//! spilling, call lowering, BTRA windows and BTDP instrumentation.

use proptest::prelude::*;

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::{interpret, BinOp, CmpOp, ExternFn, GlobalInit, Module, ModuleBuilder, Val};
use r2c_vm::{ExitStatus, MachineKind, Vm, VmConfig};

/// Recipe for one generated function body.
#[derive(Clone, Debug)]
struct FnRecipe {
    ops: Vec<(u8, i64)>,
    loop_iters: u8,
    touch_array: bool,
    call_next: bool,
}

/// Recipe for a whole module.
#[derive(Clone, Debug)]
struct ModuleRecipe {
    funcs: Vec<FnRecipe>,
    array_words: usize,
}

fn recipe_strategy() -> impl Strategy<Value = ModuleRecipe> {
    let fn_recipe = (
        proptest::collection::vec((0u8..6, -1000i64..1000), 1..12),
        1u8..6,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(ops, loop_iters, touch_array, call_next)| FnRecipe {
            ops,
            loop_iters,
            touch_array,
            call_next,
        });
    (
        proptest::collection::vec(fn_recipe, 1..6),
        prop_oneof![Just(64usize), Just(256)],
    )
        .prop_map(|(funcs, array_words)| ModuleRecipe { funcs, array_words })
}

fn bin_of(tag: u8) -> BinOp {
    match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Xor,
        4 => BinOp::And,
        _ => BinOp::Or,
    }
}

fn build(recipe: &ModuleRecipe) -> Module {
    let mut mb = ModuleBuilder::new("prop");
    let array = mb.global("arr", GlobalInit::Zero((recipe.array_words * 8) as u32), 8);
    let n = recipe.funcs.len();
    let ids: Vec<_> = (0..n)
        .map(|i| mb.declare_function(&format!("f{i}"), 1))
        .collect();
    for (i, r) in recipe.funcs.iter().enumerate() {
        let mut f = mb.function(&format!("f{i}"), 1);
        let x = f.param(0);
        let slot = f.alloca(16, 8);
        f.store(slot, 0, x);
        let zero = f.iconst(0);
        f.store(slot, 8, zero);
        let body = f.new_block("body");
        let done = f.new_block("done");
        f.br(body);
        f.switch_to(body);
        let mut v = f.load(slot, 0);
        for &(tag, c) in &r.ops {
            let cv = f.iconst(c);
            v = f.bin(bin_of(tag), v, cv);
        }
        if r.touch_array {
            let ga = f.global_addr(array);
            let mask = f.iconst((recipe.array_words - 1) as i64);
            let idx = f.bin(BinOp::And, v, mask);
            let p = f.ptr_add(ga, Some(idx), 8, 0);
            let old = f.load(p, 0);
            let nv: Val = f.bin(BinOp::Add, old, v);
            f.store(p, 0, nv);
            v = f.bin(BinOp::Xor, v, old);
        }
        if r.call_next && i + 1 < n {
            v = f.call(ids[i + 1], &[v]);
        }
        f.store(slot, 0, v);
        let i0 = f.load(slot, 8);
        let one = f.iconst(1);
        let i1 = f.bin(BinOp::Add, i0, one);
        f.store(slot, 8, i1);
        let lim = f.iconst(r.loop_iters as i64);
        let more = f.cmp(CmpOp::Lt, i1, lim);
        f.cond_br(more, body, done);
        f.switch_to(done);
        let out = f.load(slot, 0);
        f.ret(Some(out));
        f.finish();
    }
    // main: call f0 with a couple of inputs, print folded results.
    let mut f = mb.function("main", 0);
    let mut acc = f.iconst(0);
    for seed in [3i64, 17] {
        let s = f.iconst(seed);
        let r = f.call(ids[0], &[s]);
        acc = f.bin(BinOp::Xor, acc, r);
    }
    let mask = f.iconst(0xFFFF_FFFF);
    let folded = f.bin(BinOp::And, acc, mask);
    f.call_extern(ExternFn::PrintI64, &[folded]);
    f.ret(Some(folded));
    f.finish();
    mb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: if cfg!(debug_assertions) { 6 } else { 24 } })]

    /// Any generated program behaves identically interpreted and
    /// compiled with full R²C.
    #[test]
    fn generated_programs_survive_full_r2c(recipe in recipe_strategy(), seed in 0u64..1000) {
        let module = build(&recipe);
        r2c_ir::verify_module(&module).expect("generated module must verify");
        let expected = interpret(&module, "main", 50_000_000).expect("interp");
        let image = R2cCompiler::new(R2cConfig::full(seed).with_check(true)).build(&module).expect("compile");
        let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
        let out = vm.run();
        prop_assert_eq!(out.status, ExitStatus::Exited(expected.ret));
        prop_assert_eq!(&vm.output, &expected.output);
    }

    /// Push-mode BTRAs agree with AVX2-mode BTRAs and the baseline.
    #[test]
    fn modes_agree(recipe in recipe_strategy()) {
        let module = build(&recipe);
        let expected = interpret(&module, "main", 50_000_000).expect("interp");
        for cfg in [R2cConfig::baseline(5), R2cConfig::full(5), R2cConfig::full_push(5)] {
            let cfg = cfg.with_check(true);
            let image = R2cCompiler::new(cfg).build(&module).expect("compile");
            let mut vm = Vm::new(&image, VmConfig::new(MachineKind::I9_9900K.config()));
            let out = vm.run();
            prop_assert_eq!(out.status, ExitStatus::Exited(expected.ret));
            prop_assert_eq!(&vm.output, &expected.output);
        }
    }

    /// Two different seeds always lay out the image differently (given
    /// at least one function) yet agree on behaviour.
    #[test]
    fn seeds_diversify_but_agree(recipe in recipe_strategy()) {
        let module = build(&recipe);
        let a = R2cCompiler::new(R2cConfig::full(1).with_check(true)).build(&module).expect("compile a");
        let b = R2cCompiler::new(R2cConfig::full(2).with_check(true)).build(&module).expect("compile b");
        prop_assert_ne!(a.entry, b.entry);
        let run = |img: &r2c_vm::Image| {
            let mut vm = Vm::new(img, VmConfig::new(MachineKind::EpycRome.config()));
            let st = vm.run().status;
            (st, vm.output.clone())
        };
        prop_assert_eq!(run(&a), run(&b));
    }

    /// The static checker accepts every preset's output for arbitrary
    /// generated modules: both the pre-link program and the linked
    /// image come out of `r2c-check` with zero findings.
    #[test]
    fn checker_accepts_all_presets(recipe in recipe_strategy(), seed in 0u64..500) {
        let module = build(&recipe);
        let hardened = R2cConfig {
            diversify: r2c_core::DiversifyConfig::hardened(2),
            seed,
            check: true,
            check_decode: true,
        };
        for cfg in [
            R2cConfig::baseline(seed),
            R2cConfig::full(seed),
            R2cConfig::full_push(seed),
            hardened,
        ] {
            let compiler = R2cCompiler::new(cfg.with_check(false));
            let (program, opts, _) = compiler.compile_program(&module).expect("compile");
            let errs = r2c_core::check_program(&program, &opts.diversify);
            prop_assert!(errs.is_empty(), "program findings: {:?}", errs);
            // `with_check(true)` re-runs both passes inside the build
            // and turns any finding into a build error.
            R2cCompiler::new(cfg.with_check(true)).build(&module).expect("checked build");
        }
    }
}
