//! Mutation testing of the `r2c-check` static analyzer: deliberately
//! corrupt a compiled [`Program`] the way a miscompile (or a tampering
//! attacker) would, and assert the checker pinpoints the damage with
//! the *right* structured error — naming the function and, where it
//! applies, the instruction.
//!
//! The clean-compile tests double as the checker's false-positive
//! guard: every preset must come out of `check_program`/`check_image`
//! with zero findings.

use r2c_check::{check_program, CheckKind};
use r2c_codegen::{DiversifyConfig, Program, RelocKind};
use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::{BinOp, GlobalInit, Module, ModuleBuilder};
use r2c_vm::{Gpr, Insn};

/// A call-heavy module with frames in every function, so diversified
/// builds get BTRA windows, BTDP stores, NOP sleds and prolog traps.
fn victim_module() -> Module {
    let mut mb = ModuleBuilder::new("mut");
    let arr = mb.global("arr", GlobalInit::Zero(256), 8);
    let n = 4usize;
    let ids: Vec<_> = (0..n)
        .map(|i| mb.declare_function(&format!("f{i}"), 1))
        .collect();
    for i in 0..n {
        let mut f = mb.function(&format!("f{i}"), 1);
        let x = f.param(0);
        let slot = f.alloca(32, 8);
        f.store(slot, 0, x);
        let ga = f.global_addr(arr);
        let mask = f.iconst(31);
        let idx = f.bin(BinOp::And, x, mask);
        let p = f.ptr_add(ga, Some(idx), 8, 0);
        let old = f.load(p, 0);
        let mut v = f.bin(BinOp::Add, old, x);
        if i + 1 < n {
            v = f.call(ids[i + 1], &[v]);
            let seven = f.iconst(7);
            let w = f.bin(BinOp::Xor, v, seven);
            v = f.call(ids[i + 1], &[w]);
        }
        f.store(slot, 8, v);
        let out = f.load(slot, 8);
        f.ret(Some(out));
        f.finish();
    }
    let mut f = mb.function("main", 0);
    let s = f.iconst(11);
    let r = f.call(ids[0], &[s]);
    f.ret(Some(r));
    f.finish();
    mb.finish()
}

/// Compile to the pre-link program under the *effective* diversify
/// config (with the BTDP runtime globals patched in).
fn compile(cfg: R2cConfig) -> (Program, DiversifyConfig) {
    let module = victim_module();
    let (program, opts, _) = R2cCompiler::new(cfg)
        .compile_program(&module)
        .expect("compile");
    (program, opts.diversify)
}

#[test]
fn clean_compiles_pass_every_preset() {
    let module = victim_module();
    for seed in [0u64, 3, 9] {
        let mut presets = vec![
            R2cConfig::baseline(seed),
            R2cConfig::full(seed),
            R2cConfig::full_push(seed),
        ];
        presets.push(R2cConfig {
            diversify: DiversifyConfig::hardened(2),
            seed,
            check: true,
            check_decode: true,
        });
        for cfg in presets {
            // `with_check(true)` routes through both `check_program`
            // and `check_image`; a finding fails the build.
            R2cCompiler::new(cfg.with_check(true))
                .build(&module)
                .expect("checker must accept an unmutated build");
        }
    }
}

/// Dropping a BTDP decoy store (replacing it with a same-size NOP, the
/// way a buggy emitter might skip it) must surface as
/// [`CheckKind::MissingBtdpStore`] against that function.
#[test]
fn dropped_btdp_store_is_flagged() {
    for seed in 0..32u64 {
        let (mut program, div) = compile(R2cConfig::full_push(seed));
        let Some(fi) = program.funcs.iter().position(|f| f.btdp_stores > 0) else {
            continue;
        };
        let f = &mut program.funcs[fi];
        let store_at = f
            .insns
            .iter()
            .enumerate()
            .position(|(i, insn)| {
                matches!(insn, Insn::Store { mem, src: Gpr::R11 } if mem.base == Gpr::Rsp)
                    && matches!(
                        f.insns.get(i.wrapping_sub(1)),
                        Some(Insn::Load { dst: Gpr::R11, mem }) if mem.base == Gpr::R10
                    )
            })
            .expect("btdp store pair present when btdp_stores > 0");
        f.insns[store_at] = Insn::Nop { len: 1 };

        let errs = check_program(&program, &div);
        let hit = errs.iter().find(|e| {
            matches!(e.kind, CheckKind::MissingBtdpStore { recorded, found }
                if found < recorded)
        });
        let hit = hit.unwrap_or_else(|| panic!("no MissingBtdpStore in {errs:?}"));
        assert_eq!(hit.func, Some(fi), "error must name the mutated function");
        assert!(hit.func_name.is_some());
        return;
    }
    panic!("no seed produced a function with BTDP stores");
}

/// Skewing a genuine return-address relocation by one instruction (so
/// it no longer covers its call) must surface as
/// [`CheckKind::RetAddrNotAtCall`] with the bogus target coordinates.
#[test]
fn skewed_ret_addr_reloc_is_flagged() {
    for seed in 0..32u64 {
        let (mut program, div) = compile(R2cConfig::full_push(seed));
        // Pick a RetAddr reloc whose skewed target is not itself a call
        // (the error would otherwise change shape).
        let mut pick = None;
        'outer: for (fi, f) in program.funcs.iter().enumerate() {
            for (ri, r) in f.relocs.iter().enumerate() {
                if let RelocKind::RetAddr { func, insn } = r.kind {
                    let tf = &program.funcs[func];
                    if insn + 1 < tf.insns.len() && !tf.insns[insn + 1].is_call() {
                        pick = Some((fi, ri, func, insn));
                        break 'outer;
                    }
                }
            }
        }
        let Some((fi, ri, func, insn)) = pick else {
            continue;
        };
        match &mut program.funcs[fi].relocs[ri].kind {
            RelocKind::RetAddr { insn, .. } => *insn += 1,
            _ => unreachable!(),
        }

        let errs = check_program(&program, &div);
        let hit = errs
            .iter()
            .find(|e| matches!(e.kind, CheckKind::RetAddrNotAtCall { .. }))
            .unwrap_or_else(|| panic!("no RetAddrNotAtCall in {errs:?}"));
        assert_eq!(hit.func, Some(func), "error must name the covered function");
        assert_eq!(
            hit.insn,
            Some(insn + 1),
            "error must name the skewed target"
        );
        return;
    }
    panic!("no seed produced a skewable RetAddr reloc");
}

/// Turning an inserted NOP into a stray `push` unbalances the stack:
/// every later instruction's computed depth disagrees with the recorded
/// unwind table, so the checker must report
/// [`CheckKind::UnwindMismatch`] (and the `ret` depth error follows).
#[test]
fn unbalanced_push_is_flagged() {
    for seed in 0..32u64 {
        let (mut program, div) = compile(R2cConfig::full_push(seed));
        let mut pick = None;
        for (fi, f) in program.funcs.iter().enumerate() {
            if let Some(i) = f
                .insns
                .iter()
                .position(|insn| matches!(insn, Insn::Nop { .. }))
            {
                pick = Some((fi, i));
                break;
            }
        }
        let Some((fi, i)) = pick else {
            continue;
        };
        program.funcs[fi].insns[i] = Insn::Push { src: Gpr::Rbx };

        let errs = check_program(&program, &div);
        let hit = errs
            .iter()
            .find(|e| matches!(e.kind, CheckKind::UnwindMismatch { .. }))
            .unwrap_or_else(|| panic!("no UnwindMismatch in {errs:?}"));
        assert_eq!(hit.func, Some(fi), "error must name the mutated function");
        assert!(
            hit.insn.is_some_and(|at| at > i),
            "mismatch must be at or after the stray push: {hit:?}"
        );
        return;
    }
    panic!("no seed produced a NOP to mutate");
}

/// Structured errors carry printable coordinates.
#[test]
fn errors_render_with_coordinates() {
    let (mut program, div) = compile(R2cConfig::full_push(1));
    let fi = program
        .funcs
        .iter()
        .position(|f| !f.insns.is_empty())
        .unwrap();
    let last = program.funcs[fi].insns.len() - 1;
    // Truncate the terminator into a fallthrough-off-the-end.
    program.funcs[fi].insns[last] = Insn::Nop { len: 1 };
    let errs = check_program(&program, &div);
    let name = program.funcs[fi].name.clone();
    let hit = errs
        .iter()
        .find(|e| e.func == Some(fi) && e.insn.is_some())
        .unwrap_or_else(|| panic!("no located error in {errs:?}"));
    let rendered = hit.to_string();
    assert!(
        rendered.contains(&name) && rendered.contains('+'),
        "display should carry `func+insn` coordinates: {rendered}"
    );
}
