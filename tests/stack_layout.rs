//! Integration tests for the BTRA stack layout (paper Figures 2 and 3)
//! and the mimicry properties (A), (B), (C) of §4.1.

use r2c_attacks::knowledge::{handler_call_ra, probe_words};
use r2c_attacks::victim::{build_victim, run_victim};
use r2c_codegen::{BtraMode, RelocKind};
use r2c_core::{R2cCompiler, R2cConfig};
use r2c_vm::image::Region;

/// Figure 2a: on the unprotected stack the return address sits at a
/// fixed offset across variants, surrounded by known values.
#[test]
fn unprotected_return_address_is_predictable() {
    let mut offsets = Vec::new();
    for seed in 0..4 {
        let v = build_victim(R2cConfig::baseline(seed));
        let vm = run_victim(&v.image);
        let ra = handler_call_ra(&v.image);
        let (_rsp, words) = probe_words(&vm);
        let off = words.iter().position(|&w| w == ra).expect("RA visible");
        offsets.push(off);
    }
    assert!(
        offsets.windows(2).all(|w| w[0] == w[1]),
        "offsets varied: {offsets:?}"
    );
}

/// Figure 2b: under R²C the return address is surrounded by
/// booby-trapped addresses and its position varies per variant.
#[test]
fn btra_window_hides_the_return_address() {
    let mut offsets = std::collections::HashSet::new();
    for seed in 0..6 {
        let v = build_victim(R2cConfig::full(seed));
        let vm = run_victim(&v.image);
        let ra = handler_call_ra(&v.image);
        let (_rsp, words) = probe_words(&vm);
        let off = words
            .iter()
            .position(|&w| w == ra)
            .expect("RA present in window");
        offsets.insert(off);
        // Count text-range values: the RA plus its decoys.
        let candidates = words
            .iter()
            .filter(|&&w| v.image.layout.region_of(w) == Some(Region::Text))
            .count();
        assert!(
            candidates >= 8,
            "seed {seed}: expected a rich candidate set, got {candidates}"
        );
    }
    assert!(offsets.len() > 1, "the RA offset must vary across variants");
}

/// The return-address position carries real entropy across variants
/// (an attacker needs ~2^H guesses to cover the distribution), while
/// the unprotected build has none.
#[test]
fn return_address_position_entropy() {
    let offsets_for = |cfg: fn(u64) -> r2c_core::R2cConfig| -> Vec<usize> {
        (0..12)
            .map(|seed| {
                let v = build_victim(cfg(seed));
                let vm = run_victim(&v.image);
                let ra = handler_call_ra(&v.image);
                let (_rsp, words) = probe_words(&vm);
                words.iter().position(|&w| w == ra).expect("RA present")
            })
            .collect()
    };
    let unprotected = offsets_for(r2c_core::R2cConfig::baseline);
    let protected = offsets_for(r2c_core::R2cConfig::full);
    let h0 = r2c_core::analysis::shannon_entropy(&unprotected);
    let h1 = r2c_core::analysis::shannon_entropy(&protected);
    assert_eq!(h0, 0.0, "no diversification, no entropy");
    assert!(
        h1 >= 1.5,
        "RA-position entropy too low: {h1:.2} bits ({protected:?})"
    );
}

/// Property (A): the true return address occurs exactly once in the
/// leaked window; BTRAs do not duplicate it.
#[test]
fn property_a_return_address_occurs_once() {
    for seed in 0..6 {
        let v = build_victim(R2cConfig::full(seed));
        let vm = run_victim(&v.image);
        let ra = handler_call_ra(&v.image);
        let (_rsp, words) = probe_words(&vm);
        let count = words.iter().filter(|&&w| w == ra).count();
        assert_eq!(count, 1, "seed {seed}: RA occurred {count} times");
    }
}

/// Property (B): multiple invocations of the same call site produce
/// the identical BTRA set (the victim's handler is called four times;
/// all four probes must show the same text-range values).
#[test]
fn property_b_same_call_site_same_btras() {
    let v = build_victim(R2cConfig::full(11));
    let vm = run_victim(&v.image);
    assert_eq!(vm.probes.len(), 4);
    let text_values = |snap: &r2c_vm::StackSnapshot| -> Vec<u64> {
        let mut vals: Vec<u64> = snap
            .bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .filter(|&w| v.image.layout.region_of(w) == Some(Region::Text))
            .collect();
        vals.sort_unstable();
        vals
    };
    let first = text_values(&vm.probes[0]);
    for (i, probe) in vm.probes.iter().enumerate().skip(1) {
        assert_eq!(
            text_values(probe),
            first,
            "invocation {i} exposed a different BTRA set — two observations would identify the RA"
        );
    }
}

/// Property (C): different call sites use different BTRA sets. We
/// inspect the pre-link program: every push-mode call site's set of
/// booby-trap relocations, compared pairwise.
#[test]
fn property_c_different_call_sites_different_btras() {
    let module = r2c_attacks::victim::victim_module();
    let cfg = R2cConfig::full_push(21);
    let (program, _opts, _rt) = R2cCompiler::new(cfg).compile_program(&module).unwrap();
    // Collect per-call-site BTRA sets: runs of consecutive BoobyTrap
    // relocations between RetAddr relocations.
    let mut sites: Vec<Vec<(u32, u8)>> = Vec::new();
    for f in &program.funcs {
        let mut relocs = f.relocs.clone();
        relocs.sort_by_key(|r| r.at);
        let mut current: Vec<(u32, u8)> = Vec::new();
        for r in &relocs {
            match r.kind {
                RelocKind::BoobyTrap { index, offset } => current.push((index, offset)),
                RelocKind::RetAddr { .. } if !current.is_empty() => {
                    sites.push(std::mem::take(&mut current));
                }
                _ => {}
            }
        }
    }
    assert!(
        sites.len() >= 4,
        "expected several BTRA sites, got {}",
        sites.len()
    );
    let mut identical_pairs = 0;
    let mut total_pairs = 0;
    for i in 0..sites.len() {
        for j in i + 1..sites.len() {
            total_pairs += 1;
            if sites[i] == sites[j] {
                identical_pairs += 1;
            }
        }
    }
    assert!(
        identical_pairs == 0,
        "{identical_pairs}/{total_pairs} call-site BTRA sets identical"
    );
}

/// Figure 3 semantics: the stack is 16-byte aligned at every function
/// entry even with randomized windows — the aligned-vector BTRA setup
/// would fault otherwise, and so would real SSE code. Running every
/// configuration seed cleanly is the witness.
#[test]
fn alignment_invariant_across_seeds_and_modes() {
    let module = r2c_attacks::victim::victim_module();
    for mode in [BtraMode::Push, BtraMode::Avx2] {
        for seed in 0..8 {
            let mut cfg = R2cConfig::full(seed);
            cfg.diversify.btra = Some(r2c_codegen::BtraConfig {
                mode,
                total: 10,
                omit_vzeroupper: false,
            });
            let image = R2cCompiler::new(cfg).build(&module).unwrap();
            let mut vm = r2c_vm::Vm::new(
                &image,
                r2c_vm::VmConfig::new(r2c_vm::MachineKind::EpycRome.config()),
            );
            let out = vm.run();
            assert!(
                out.status.is_exit(),
                "{mode:?}/seed {seed}: {:?} (misalignment would fault here)",
                out.status
            );
        }
    }
}

/// Varying the BTRA count: more BTRAs, more decoys in the window
/// (candidate set grows with R, §7.2.1).
#[test]
fn candidate_set_scales_with_btra_count() {
    let module = r2c_attacks::victim::victim_module();
    let candidates_for = |total: u8| -> usize {
        let mut cfg = R2cConfig::full(5);
        cfg.diversify.btra = Some(r2c_codegen::BtraConfig {
            mode: BtraMode::Avx2,
            total,
            omit_vzeroupper: false,
        });
        let image = R2cCompiler::new(cfg).build(&module).unwrap();
        let mut vm = r2c_vm::Vm::new(
            &image,
            r2c_vm::VmConfig::new(r2c_vm::MachineKind::EpycRome.config()),
        );
        vm.run();
        let snap = &vm.probes[0];
        snap.bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .filter(|&w| image.layout.region_of(w) == Some(Region::Text))
            .count()
    };
    let small = candidates_for(4);
    let large = candidates_for(16);
    assert!(
        large > small,
        "16 BTRAs must leave more candidates than 4 ({large} vs {small})"
    );
}
