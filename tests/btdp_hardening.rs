//! Integration tests for BTDP placement (paper Figure 5 and §5.2):
//! the hardened design keeps the BTDP array on the heap, leaves only a
//! single pointer (plus decoys) in the data section, and no BTDP value
//! ever occurs both in the data section and on the stack.

use std::collections::HashSet;

use r2c_attacks::victim::{build_victim, run_victim, victim_module};
use r2c_core::runtime::PTR_GLOBAL;
use r2c_core::{BtdpConfig, R2cCompiler, R2cConfig};
use r2c_vm::{MachineKind, Perms, Vm, VmConfig};

fn heap_range_words_in_data(vm: &Vm, image: &r2c_vm::Image) -> Vec<u64> {
    let l = image.layout;
    let mut out = Vec::new();
    let mut addr = l.data_base;
    while addr + 8 <= l.data_end {
        let w = vm.mem.peek_u64(addr);
        if w >= l.heap_base && w < l.heap_base + l.heap_size {
            out.push(w);
        }
        addr += 8;
    }
    out
}

fn stack_words(vm: &Vm) -> Vec<u64> {
    let snap = &vm.probes[0];
    snap.bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Figure 5, hardened (right side): no single BTDP occurs both in the
/// data section and on the stack.
#[test]
fn hardened_no_btdp_in_both_places() {
    for seed in 0..6 {
        let v = build_victim(R2cConfig::full(seed));
        let vm = run_victim(&v.image);
        let l = v.image.layout;
        let data_heap_words: HashSet<u64> = heap_range_words_in_data(&vm, &v.image)
            .into_iter()
            .collect();
        let stack_heap_words: HashSet<u64> = stack_words(&vm)
            .into_iter()
            .filter(|&w| w >= l.heap_base && w < l.heap_base + l.heap_size)
            .collect();
        // The array pointer itself lives in .data but points to the
        // (readable) array, not into a guard page, and never appears on
        // the stack; decoys point into guard pages and never appear on
        // the stack either.
        let both: Vec<u64> = data_heap_words
            .intersection(&stack_heap_words)
            .copied()
            .collect();
        assert!(
            both.is_empty(),
            "seed {seed}: values in both .data and stack: {both:?}"
        );
    }
}

/// The naive variant (Figure 5, left) *does* leak: the array is in the
/// data section, so every stack BTDP also occurs in .data — exactly the
/// cross-referencing attack the hardening prevents.
#[test]
fn naive_variant_leaks_btdp_identity() {
    let module = victim_module();
    let mut cfg = R2cConfig::full(3);
    cfg.diversify.btdp = Some(BtdpConfig {
        naive_data_array: true,
        ..BtdpConfig::default()
    });
    let image = R2cCompiler::new(cfg).build(&module).unwrap();
    let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
    let out = vm.run();
    assert!(out.status.is_exit());
    let l = image.layout;
    let data_heap_words: HashSet<u64> = heap_range_words_in_data(&vm, &image).into_iter().collect();
    let stack_btdps: Vec<u64> = stack_words(&vm)
        .into_iter()
        .filter(|&w| w >= l.heap_base && w < l.heap_base + l.heap_size)
        .filter(|&w| vm.perms_at(w) == Some(Perms::NONE))
        .collect();
    assert!(!stack_btdps.is_empty(), "expected BTDPs on the stack");
    let leaked = stack_btdps
        .iter()
        .filter(|w| data_heap_words.contains(w))
        .count();
    assert!(
        leaked > 0,
        "naive layout should expose stack BTDPs in the data section"
    );
}

/// §5.2: every value in the BTDP array points into a page with all
/// permissions revoked, at page-interior (non-zero, varied) offsets.
#[test]
fn btdp_array_points_into_guard_pages_at_varied_offsets() {
    let module = victim_module();
    let (image, info) = R2cCompiler::new(R2cConfig::full(17))
        .build_with_info(&module)
        .unwrap();
    let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
    assert!(vm.run().status.is_exit());
    let arr = vm.mem.peek_u64(image.func_addr(PTR_GLOBAL));
    let mut offsets = HashSet::new();
    for k in 0..info.btdp_array_len as u64 {
        let btdp = vm.mem.peek_u64(arr + 8 * k);
        assert_eq!(
            vm.perms_at(btdp),
            Some(Perms::NONE),
            "entry {k} not guarded"
        );
        offsets.insert(btdp & 0xfff);
    }
    assert!(
        offsets.len() > 4,
        "BTDPs should use varied page offsets, got {offsets:?}"
    );
}

/// §5.2 skip optimization: functions without stack allocations receive
/// no BTDP stores.
#[test]
fn leaf_functions_without_stack_skip_btdp() {
    // A module whose only non-main function is a register-only leaf.
    let src = r#"
func @tiny(1) {
entry:
  %0 = param 0
  %1 = add %0, %0
  ret %1
}
func @main(0) {
entry:
  %0 = alloca 8 align 8
  %1 = const 5
  store %0 + 0, %1
  %2 = load %0 + 0
  %3 = call @tiny(%2)
  ret %3
}
"#;
    let module = r2c_ir::parse_module(src).unwrap();
    let mut main_ever_instrumented = false;
    for seed in 0..8 {
        let compiler = R2cCompiler::new(R2cConfig::full(seed));
        let (program, _, _) = compiler.compile_program(&module).unwrap();
        let tiny = program.funcs.iter().find(|f| f.name == "tiny").unwrap();
        // `tiny` keeps everything in registers (no allocas, no spill
        // slots), so the §5.2 optimization must skip it in every seed.
        assert_eq!(
            tiny.btdp_stores, 0,
            "seed {seed}: no-stack function got BTDP stores"
        );
        let main = program.funcs.iter().find(|f| f.name == "main").unwrap();
        main_ever_instrumented |= main.btdp_stores > 0;
    }
    // main has an alloca, so it is eligible; the per-function count is
    // uniform 0..=5, so across 8 seeds it must be instrumented at
    // least once.
    assert!(
        main_ever_instrumented,
        "alloca-bearing main never drew BTDP stores"
    );
}

/// Reactive behaviour: dereferencing any BTDP raises a guard-page
/// detection the monitor can act on (§4.2).
#[test]
fn dereferencing_btdp_is_detected() {
    let module = victim_module();
    let (image, info) = R2cCompiler::new(R2cConfig::full(23))
        .build_with_info(&module)
        .unwrap();
    let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
    assert!(vm.run().status.is_exit());
    let arr = vm.mem.peek_u64(image.func_addr(PTR_GLOBAL));
    let btdp = vm.mem.peek_u64(arr + 8 * (info.btdp_array_len as u64 / 2));
    assert!(vm.detections().is_empty());
    let err = vm.attacker_read(btdp, 8).unwrap_err();
    assert!(err.is_detection());
    assert_eq!(vm.detections().len(), 1);
}
