//! Named regression cases distilled from differential fuzzing
//! (`r2c-fuzz`): each pins an IR shape that once broke — or was
//! designed to break — part of the pipeline, and runs it through the
//! full differential oracle (reference interpreter vs compiled +
//! diversified execution, `r2c-check` forced on) across the quick
//! configuration matrix.
//!
//! These run in the default workspace suite; the fuzz binary
//! (`cargo run -p r2c-bench --bin fuzz`) explores beyond them.

use r2c_fuzz::{run_oracle, summarize_divergences, CaseVerdict, OracleMatrix};
use r2c_ir::parse_module;

fn assert_all_cells_agree(src: &str, what: &str) {
    let m = parse_module(src).unwrap_or_else(|e| panic!("{what}: parse failed: {e:?}"));
    r2c_ir::verify_module(&m).unwrap_or_else(|e| panic!("{what}: verify failed: {e:?}"));
    match run_oracle(&m, &OracleMatrix::quick()) {
        CaseVerdict::Pass { cells } => assert!(cells > 0),
        CaseVerdict::Skipped { reason } => panic!("{what}: reference rejected module: {reason}"),
        CaseVerdict::Diverged(divs) => panic!(
            "{what}: {}; first cell details: {:?}",
            summarize_divergences(&divs),
            divs[0].details
        ),
    }
}

/// Regression: an *empty, self-looping, unreachable* block. The seed
/// interpreter burned its whole fuel budget on this shape (fixed in
/// PR 1 as a reachable-loop hang); the compile path must also lower
/// it — branch fixups, NOP/trap insertion and all — without hanging,
/// mis-linking, or tripping `r2c-check`'s CFG recovery.
#[test]
fn empty_self_looping_block_compiles_everywhere() {
    assert_all_cells_agree(
        r#"
func @main(0) {
entry:
  %0 = const 42
  %1 = extern print(%0)
  ret %0
limbo:
  br limbo
}
"#,
        "empty self-looping block",
    );
}

/// Regression: the diamond CFG whose join block uses entry-block
/// definitions. The seed's def-before-use verifier rejected exactly
/// this (an any-predecessor check instead of dominance); PR 2 replaced
/// it with a dominator-tree analysis. Keep the shape compiling and
/// semantically transparent end to end.
#[test]
fn diamond_join_uses_entry_definitions() {
    assert_all_cells_agree(
        r#"
global @out zero 16 align 8

func @main(0) {
entry:
  %0 = const 10
  %1 = const 3
  %2 = cmp lt %1, %0
  condbr %2, then, else
then:
  %3 = add %0, %1
  %4 = addrof @out
  store %4 + 0, %3
  br join
else:
  %5 = mul %0, %1
  %6 = addrof @out
  store %6 + 0, %5
  br join
join:
  %7 = sub %0, %1
  %8 = addrof @out
  store %8 + 8, %7
  %9 = load %8 + 0
  %10 = add %9, %7
  %11 = extern print(%10)
  ret %10
}
"#,
        "diamond join",
    );
}

/// Regression: deep linear recursion with a fat per-frame alloca,
/// pushing the diversified stack (BTRA windows, randomized slots,
/// BTDP decoys all inflate frames) toward the 256 KiB guard page
/// without crossing it. Catches frame-size accounting bugs that only
/// show up when hundreds of frames stack up.
#[test]
fn deep_recursion_near_guard_page_boundary() {
    assert_all_cells_agree(
        r#"
func @deep(2) {
entry:
  %0 = param 0
  %1 = param 1
  %2 = alloca 512 align 16
  store %2 + 0, %0
  store %2 + 504, %1
  %3 = const 0
  %4 = cmp gt %1, %3
  condbr %4, rec, base
rec:
  %5 = const 1
  %6 = sub %1, %5
  %7 = add %0, %1
  %8 = call @deep(%7, %6)
  %9 = load %2 + 0
  %10 = add %8, %9
  ret %10
base:
  %11 = load %2 + 504
  %12 = load %2 + 0
  %13 = add %12, %11
  ret %13
}

func @main(0) {
entry:
  %0 = const 5
  %1 = const 200
  %2 = call @deep(%0, %1)
  %3 = extern print(%2)
  ret %2
}
"#,
        "deep recursion near guard page",
    );
}

/// Regression companion to the reducer: a minimized reproducer written
/// by `divergence_report` must reparse and re-verify — the corpus
/// format is part of the oracle contract.
#[test]
fn persisted_reproducer_format_roundtrips() {
    let src = r#"
func @main(0) {
entry:
  %0 = const 9
  ret %0
}
"#;
    let m = parse_module(src).unwrap();
    let text = r2c_fuzz::reproducer_source(&m, &["cell: full seed=1".to_string()]);
    let back = parse_module(&text).expect("reproducer must reparse");
    assert_eq!(back, m);
}
