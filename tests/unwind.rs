//! Integration tests for stack unwinding through BTRA-instrumented
//! frames (paper §7.2.4): the emitted `.eh_frame`-style tables must
//! locate the true return address at every covered program point —
//! exception propagation and backtraces keep working even though the
//! return address moved inside the frame.

use r2c_attacks::victim::{build_victim, run_victim};
use r2c_core::R2cConfig;
use r2c_vm::unwind::unwind;
use r2c_vm::Vm;

fn backtrace_from_probe(vm: &Vm, image: &r2c_vm::Image) -> Vec<u64> {
    let snap = &vm.probes[0];
    let frames = unwind(
        &image.unwind,
        snap.pc,
        snap.rsp,
        |addr| {
            // Only the leaked window is available; outside it, read
            // guest memory directly (the unwinder runs in-process and
            // may touch the whole stack).
            let mut buf = [0u8; 8];
            vm.mem.peek(addr, &mut buf);
            Some(u64::from_le_bytes(buf))
        },
        16,
    );
    frames.iter().map(|f| f.pc).collect()
}

fn func_containing(image: &r2c_vm::Image, pc: u64) -> Option<String> {
    image
        .functions()
        .find(|s| pc >= s.addr && pc < s.addr + s.size)
        .map(|s| s.name.clone())
}

/// The canonical backtrace at the probe point is
/// handler → main (the probe sits inside `handler`, called from
/// `main`'s loop), under every configuration.
#[test]
fn backtrace_is_correct_under_all_configs() {
    for (label, cfg) in [
        ("baseline", R2cConfig::baseline(2)),
        ("full", R2cConfig::full(2)),
        ("full_push", R2cConfig::full_push(2)),
    ] {
        let v = build_victim(cfg);
        let vm = run_victim(&v.image);
        let pcs = backtrace_from_probe(&vm, &v.image);
        let names: Vec<String> = pcs
            .iter()
            .filter_map(|&pc| func_containing(&v.image, pc))
            .collect();
        assert!(
            names.len() >= 2,
            "{label}: backtrace too shallow: {names:?} (pcs {pcs:x?})"
        );
        assert_eq!(names[0], "handler", "{label}: innermost frame");
        assert_eq!(names[1], "main", "{label}: caller frame");
    }
}

/// Unwinding must be stable across seeds: BTRA windows of random
/// widths never confuse the tables.
#[test]
fn backtrace_stable_across_seeds() {
    for seed in 0..10 {
        let v = build_victim(R2cConfig::full(seed));
        let vm = run_victim(&v.image);
        let pcs = backtrace_from_probe(&vm, &v.image);
        let names: Vec<String> = pcs
            .iter()
            .filter_map(|&pc| func_containing(&v.image, pc))
            .collect();
        assert!(
            names.starts_with(&["handler".into(), "main".into()]),
            "seed {seed}: {names:?}"
        );
    }
}

/// The unwinder's second frame pc must be the *true* return address of
/// the handler call — not one of the BTRAs around it.
#[test]
fn unwinder_recovers_true_return_address_not_a_btra() {
    for seed in 0..6 {
        let v = build_victim(R2cConfig::full(seed));
        let vm = run_victim(&v.image);
        let pcs = backtrace_from_probe(&vm, &v.image);
        let expected = r2c_attacks::knowledge::handler_call_ra(&v.image);
        assert_eq!(pcs[1], expected, "seed {seed}: unwinder fooled by a BTRA");
    }
}

/// Every text-section pc inside a compiled function body is covered by
/// some unwind row (the paper emits CFI directives for the BTRA setup
/// and teardown too).
#[test]
fn unwind_tables_cover_function_bodies() {
    let v = build_victim(R2cConfig::full(4));
    let mut uncovered = 0usize;
    let mut total = 0usize;
    for (i, &addr) in v.image.insn_addrs.iter().enumerate() {
        let _ = i;
        // Skip booby-trap bodies: nothing ever unwinds from them (they
        // terminate the process).
        if v.image.symbols.iter().any(|s| {
            s.kind == r2c_vm::SymbolKind::BoobyTrap && addr >= s.addr && addr < s.addr + s.size
        }) {
            continue;
        }
        total += 1;
        if v.image.unwind.lookup(addr).is_none() {
            uncovered += 1;
        }
    }
    assert_eq!(
        uncovered, 0,
        "{uncovered}/{total} instruction addresses uncovered"
    );
}
