//! Cross-crate differential testing: every SPEC-profiled workload and
//! both web-server workloads must produce interpreter-identical output
//! under full R²C (both BTRA modes) across seeds — the reproduction's
//! equivalent of the paper's §6.3 "the browser passes its test suites".

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::interpret;
use r2c_vm::{ExitStatus, MachineKind, Vm, VmConfig};
use r2c_workloads::{spec_workloads, webserver_module, Scale, ServerKind};

fn check(module: &r2c_ir::Module, name: &str, cfg: R2cConfig, machine: MachineKind) {
    let expected = interpret(module, "main", 2_000_000_000)
        .unwrap_or_else(|e| panic!("{name}: interp failed: {e}"));
    let image = R2cCompiler::new(cfg)
        .build(module)
        .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    let mut vm = Vm::new(&image, VmConfig::new(machine.config()));
    let out = vm.run();
    assert_eq!(
        out.status,
        ExitStatus::Exited(expected.ret),
        "{name}: exit mismatch"
    );
    assert_eq!(vm.output, expected.output, "{name}: output mismatch");
    assert!(
        vm.detections().is_empty(),
        "{name}: benign run raised detections"
    );
}

#[test]
fn spec_workloads_full_r2c_differential() {
    for w in spec_workloads(Scale::Test) {
        for seed in [1u64, 99] {
            check(
                &w.module,
                w.name,
                R2cConfig::full(seed),
                MachineKind::EpycRome,
            );
        }
    }
}

#[test]
fn spec_workloads_push_mode_differential() {
    for w in spec_workloads(Scale::Test) {
        check(
            &w.module,
            w.name,
            R2cConfig::full_push(7),
            MachineKind::Xeon8358,
        );
    }
}

#[test]
fn webserver_differential() {
    for kind in [ServerKind::Nginx, ServerKind::Apache] {
        let module = webserver_module(kind, 40);
        for seed in [3u64, 4] {
            check(
                &module,
                kind.name(),
                R2cConfig::full(seed),
                MachineKind::I9_9900K,
            );
        }
        check(
            &module,
            kind.name(),
            R2cConfig::baseline(0),
            MachineKind::Tr3970X,
        );
    }
}

#[test]
fn every_isolated_component_differential() {
    use r2c_core::Component;
    let w = &spec_workloads(Scale::Test)[4]; // omnetpp: call + indirect heavy
    for c in Component::TABLE1 {
        check(
            &w.module,
            w.name,
            R2cConfig::component(c, 13),
            MachineKind::EpycRome,
        );
    }
    check(
        &w.module,
        w.name,
        R2cConfig::component(Component::Oia, 13),
        MachineKind::EpycRome,
    );
}
