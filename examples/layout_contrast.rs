//! Figure 1 in the terminal: what an attacker with an arbitrary-read
//! primitive sees on the stack of (a) an unprotected program, (b) a
//! code-diversification-only defense (Readactor-like), and (c) R²C.
//!
//! ```sh
//! cargo run --release --example layout_contrast
//! ```

use r2c_attacks::knowledge::probe_words;
use r2c_attacks::victim::{build_victim, run_victim};
use r2c_baselines::DefenseKind;
use r2c_core::R2cConfig;
use r2c_vm::image::Region;

fn describe(label: &str, cfg: R2cConfig) {
    let victim = build_victim(cfg);
    let vm = run_victim(&victim.image);
    let (rsp, words) = probe_words(&vm);
    println!("== {label} ==");
    println!("   leaked frame at rsp = {rsp:#x}; first 24 qwords:");
    for (i, w) in words.iter().take(24).enumerate() {
        let note = match victim.image.layout.region_of(*w) {
            Some(Region::Text) => "<- code pointer (return address? BTRA? fn ptr?)",
            Some(Region::Heap) => "<- heap-range pointer (object? BTDP guard?)",
            Some(Region::Data) => "<- data-section pointer",
            Some(Region::Stack) => "<- stack pointer",
            None => "",
        };
        if *w != 0 {
            println!("   [rsp+{:>3}] {w:#018x} {note}", 8 * i);
        }
    }
    let code_ptrs = words
        .iter()
        .filter(|&&w| victim.image.layout.region_of(w) == Some(Region::Text))
        .count();
    let heap_ptrs = words
        .iter()
        .filter(|&&w| victim.image.layout.region_of(w) == Some(Region::Heap))
        .count();
    println!("   => {code_ptrs} code-range values, {heap_ptrs} heap-range values\n");
}

fn main() {
    println!("What Malicious Thread Blocking shows the attacker (paper Figures 1-2):\n");
    describe("unprotected", R2cConfig::baseline(5));
    describe(
        "code diversification only (Readactor-like)",
        DefenseKind::Readactor.config(5),
    );
    describe("R2C (code + data diversification)", R2cConfig::full(5));
    println!("Unprotected: one code pointer at a predictable offset = the return");
    println!("address. Under R2C the window is full of indistinguishable candidates,");
    println!("their positions differ per variant, and heap-range values may be traps.");
}
