//! The headline demo: the AOCR attack end-to-end against an
//! unprotected victim (succeeds deterministically) and against full
//! R²C (fails, usually with a booby-trap or guard-page detection).
//!
//! ```sh
//! cargo run --release --example aocr_attack
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;

use r2c_attacks::outcome::Tally;
use r2c_attacks::victim::{build_victim, run_victim, MAGIC_ARG};
use r2c_attacks::{aocr, AttackerKnowledge};
use r2c_core::R2cConfig;

fn main() {
    println!("AOCR: profile the stack, follow a heap pointer to the data section,");
    println!("corrupt the dispatcher's default parameter, reuse the dispatcher.");
    println!("Attack goal: privileged({MAGIC_ARG:#x}) runs.\n");

    for (label, cfg) in [
        ("unprotected", R2cConfig::baseline(0)),
        ("full R2C", R2cConfig::full(0)),
    ] {
        // The attacker studies their own copy of the binary first.
        let knowledge = AttackerKnowledge::profile(&cfg, 0xA77AC);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut tally = Tally::default();
        let trials = 24;
        for seed in 0..trials {
            // Each trial attacks an independently diversified victim
            // (fresh seed), as deployed diversity would present.
            let victim = build_victim(cfg.with_seed(seed));
            let mut vm = run_victim(&victim.image);
            let outcome = aocr::aocr_attack(&mut vm, &victim.image, &knowledge, &mut rng);
            tally.add(&outcome);
            if seed < 3 {
                println!("  [{label}] variant {seed}: {outcome:?}");
            }
        }
        println!("  [{label}] over {trials} variants: {tally}\n");
    }

    println!("The unprotected target falls to the static offsets every time;");
    println!("under R2C the profiled offsets are wrong (stack-slot and global");
    println!("shuffling), the heap cluster is salted with BTDPs (guard pages),");
    println!("and wrong picks raise detections the defender can act on.");
}
