//! Disassembles the same tiny program twice — baseline and full R²C —
//! so the diversification is visible instruction by instruction: BTRA
//! windows (push or AVX2 loads from call-site arrays), NOP sleds,
//! prolog trap runs, shuffled function order, booby-trap functions.
//!
//! ```sh
//! cargo run --release --example disassemble
//! ```

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_vm::disasm::{disasm_function, symbolize};

const PROGRAM: &str = r#"
func @callee(1) {
entry:
  %0 = param 0
  %1 = const 3
  %2 = mul %0, %1
  ret %2
}
func @main(0) {
entry:
  %0 = const 14
  %1 = call @callee(%0)
  %2 = extern print(%1)
  ret %1
}
"#;

fn main() {
    let module = r2c_ir::parse_module(PROGRAM).expect("parse");

    let base = R2cCompiler::new(R2cConfig::baseline(7))
        .build(&module)
        .unwrap();
    println!("================ baseline ================\n");
    print!("{}", disasm_function(&base, "main").unwrap());
    print!("\n{}", disasm_function(&base, "callee").unwrap());

    let full = R2cCompiler::new(R2cConfig::full_push(7))
        .build(&module)
        .unwrap();
    println!("\n============= full R2C (push BTRAs) =============\n");
    print!("{}", disasm_function(&full, "main").unwrap());
    print!("\n{}", disasm_function(&full, "callee").unwrap());

    // Where do the pushed booby-trap addresses point? Into trap runs.
    println!("\nBTRA targets in main's first window:");
    let main_sym = full.symbol("main").unwrap().clone();
    for (i, insn) in full.insns.iter().enumerate() {
        let addr = full.insn_addrs[i];
        if addr < main_sym.addr || addr >= main_sym.addr + main_sym.size {
            continue;
        }
        if let r2c_vm::Insn::PushImm { imm } = insn {
            match symbolize(&full, *imm) {
                Some((name, off)) => println!("  push ${imm:#x}  -> {name}+{off:#x}"),
                None => println!("  push ${imm:#x}  -> (unmapped)"),
            }
        }
    }
    println!("\nEvery pushed address lands either in a booby-trap run (__bt_*) or");
    println!("is the genuine return address (main+<offset>) — indistinguishable");
    println!("by value range, and the real one moves per build seed.");
}
