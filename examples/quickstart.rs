//! Quickstart: compile a tiny program with full R²C protection, run it
//! in the VM, and look at what the defense actually did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_vm::{MachineKind, SymbolKind, Vm, VmConfig};

const PROGRAM: &str = r#"
# A tiny program in the textual IR: sums the squares 1..=10 and
# prints the result.
func @square(1) {
entry:
  %0 = param 0
  %1 = mul %0, %0
  ret %1
}

func @main(0) {
entry:
  %0 = alloca 16 align 8       # two slots: i, acc
  %1 = const 1
  store %0 + 0, %1
  %2 = const 0
  store %0 + 8, %2
  br loop
loop:
  %3 = load %0 + 0
  %4 = call @square(%3)
  %5 = load %0 + 8
  %6 = add %5, %4
  store %0 + 8, %6
  %7 = const 1
  %8 = add %3, %7
  store %0 + 0, %8
  %9 = const 10
  %10 = cmp le %8, %9
  condbr %10, loop, done
done:
  %11 = load %0 + 8
  %12 = extern print(%11)
  ret %11
}
"#;

fn main() {
    let module = r2c_ir::parse_module(PROGRAM).expect("parse");

    // Two builds of the same program: one unprotected baseline, one
    // with full R²C (BTRAs, BTDPs, NOPs, traps, shuffling, XoM).
    for (label, cfg) in [
        ("baseline", R2cConfig::baseline(42)),
        ("full R2C", R2cConfig::full(42)),
    ] {
        let (image, info) = R2cCompiler::new(cfg)
            .build_with_info(&module)
            .expect("compile");
        let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
        let out = vm.run();
        let booby_traps = image
            .symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::BoobyTrap)
            .count();
        println!("== {label} ==");
        println!("  exit:            {:?}", out.status);
        println!(
            "  output:          {:?} (385 = 1^2 + ... + 10^2)",
            vm.output
        );
        println!("  text size:       {} bytes", image.text_size());
        println!(
            "  text perms:      {}",
            if image.xom {
                "execute-only"
            } else {
                "read+execute"
            }
        );
        println!("  BTRA call sites: {}", info.btra_sites);
        println!("  BTDP stores:     {}", info.btdp_stores);
        println!("  booby traps:     {booby_traps}");
        println!("  cycles:          {:.0}", out.stats.cycles_f64());
        println!();
    }

    // Same program, three seeds: three different memory layouts —
    // software diversity at work.
    println!("== layout diversity across seeds ==");
    for seed in [1u64, 2, 3] {
        let image = R2cCompiler::new(R2cConfig::full(seed))
            .build(&module)
            .unwrap();
        println!(
            "  seed {seed}: main @ {:#x}, square @ {:#x}, square-main delta {:+}",
            image.func_addr("main"),
            image.func_addr("square"),
            image.func_addr("square") as i64 - image.func_addr("main") as i64,
        );
    }
}
