//! Blind-ROP brute force against a crash-restarting worker (paper
//! §4.1, §7.3): on an unprotected server the scan eventually finds the
//! privileged function; under R²C the booby traps catch it within a
//! handful of probes.
//!
//! ```sh
//! cargo run --release --example brute_force
//! ```

use r2c_attacks::blindrop::{blind_rop, BlindOutcome};
use r2c_attacks::victim::build_victim;
use r2c_core::R2cConfig;

fn main() {
    println!("Blind ROP vs a worker pool that restarts on crash without");
    println!("re-randomizing (nginx/Apache/OpenSSH-style, per the paper).\n");

    for (label, cfg) in [
        ("unprotected", R2cConfig::baseline(0)),
        ("full R2C", R2cConfig::full(0)),
    ] {
        println!("== {label} ==");
        for seed in 0..5 {
            let victim = build_victim(cfg.with_seed(seed));
            let r = blind_rop(&victim.image, 4000);
            let verdict = match r.outcome {
                BlindOutcome::Success => {
                    format!("SUCCESS after {} worker crashes - attacker wins", r.probes)
                }
                BlindOutcome::Detected => format!(
                    "DETECTED at probe {} - booby trap fired, defender reacts",
                    r.probes
                ),
                BlindOutcome::Exhausted => format!("gave up after {} probes", r.probes),
            };
            println!("  variant {seed}: {verdict}");
        }
        println!();
    }
    println!("Crashes are free information on the unprotected target; under R2C");
    println!("nearly every probe lands on a booby trap first (paper §7.2.1).");
}
