//! Web-server demo (paper §6.2.4): throughput of nginx-like and
//! Apache-like servers with and without R²C on two machines.
//!
//! ```sh
//! cargo run --release --example webserver
//! ```

use r2c_core::R2cConfig;
use r2c_vm::MachineKind;
use r2c_workloads::{webserver::run_webserver, ServerKind};

fn main() {
    let requests = 3_000;
    println!("Serving {requests} requests of 64-byte pages per configuration.\n");
    for kind in [ServerKind::Nginx, ServerKind::Apache] {
        for machine in [MachineKind::I9_9900K, MachineKind::EpycRome] {
            let base = run_webserver(kind, requests, R2cConfig::baseline(9), machine);
            let prot = run_webserver(kind, requests, R2cConfig::full(9), machine);
            let drop = 100.0 * (1.0 - prot.throughput_rps / base.throughput_rps);
            println!(
                "{:7} on {:9}: {:>10.0} req/s baseline, {:>10.0} req/s R2C  ({:.1}% drop; rss {} -> {} KiB)",
                kind.name(),
                machine.name(),
                base.throughput_rps,
                prot.throughput_rps,
                drop,
                base.max_rss_bytes / 1024,
                prot.max_rss_bytes / 1024,
            );
        }
    }
    println!("\npaper: i9-9900K: -13% nginx / -12% Apache; AMD machines: -3..4%;");
    println!("webserver memory roughly doubles (guard pages + BTRA arrays).");
}
