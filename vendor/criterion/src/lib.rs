//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface used by `crates/bench/benches/perf.rs`:
//! [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `bench_function` / `bench_with_input`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! criterion's statistical sampling it runs a warm-up iteration and a
//! fixed sample count, reporting min/mean/max wall-clock per iteration —
//! enough for coarse host-side regression tracking without external
//! dependencies.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id shown as `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up, untimed.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark that takes no explicit input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{name:<50} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
        samples.len()
    );
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }
}

/// Declares a function running the given benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
