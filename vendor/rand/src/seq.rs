//! Sequence-related extensions (`shuffle`, `choose`).

use crate::{Rng, RngCore};

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, matching upstream's
    /// iteration order: high index down to 1).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..32).collect();
        let mut b = a.clone();
        a.shuffle(&mut SmallRng::seed_from_u64(9));
        b.shuffle(&mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(a, sorted, "32 elements should not shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let v: Vec<u8> = vec![];
        assert!(v.choose(&mut SmallRng::seed_from_u64(1)).is_none());
    }
}
