//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the slice of the `rand 0.8` API it actually
//! uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`), [`rngs::SmallRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator core is xoshiro256++
//! seeded through SplitMix64 — the same algorithm upstream `SmallRng`
//! uses on 64-bit targets — so seeded streams are deterministic and of
//! equivalent statistical quality.
//!
//! Determinism per seed is the only hard requirement of the R²C
//! reproduction (every measurement recompiles with a fresh seed and the
//! cycle counts must be reproducible); nothing in the repo depends on
//! matching upstream `rand`'s exact value streams.

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with
    /// SplitMix64 exactly like upstream `rand`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Vigna), the expansion upstream rand uses.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits, matching upstream
    /// `rand`'s `Standard` construction (multiply-based, so every value
    /// is a multiple of 2⁻⁵³).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
///
/// Mirrors upstream's structure — a single blanket impl per range shape
/// over [`SampleUniform`] — because that is what lets type inference
/// unify the range's literal type with the expression's expected type.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; caller guarantees `lo < hi`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`; caller guarantees `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Samples a value in `[0, span)` using Lemire's widening-multiply
/// method (unbiased via rejection on the low word).
#[inline]
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                let off = sample_span(rng, span);
                ((lo as i128) + off as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = sample_span(rng, span + 1);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, the conventional u64 -> f64 mapping.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = rng.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
