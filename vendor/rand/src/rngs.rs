//! Generator implementations.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++ (Blackman &
/// Vigna), the algorithm upstream `rand 0.8` uses for `SmallRng` on
/// 64-bit targets.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state would be a fixed point; nudge it the way
        // upstream xoshiro implementations do.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

/// The standard (OS-entropy) generator of upstream `rand`. This offline
/// stand-in has no entropy source, so it is seeded from the monotonic
/// clock — good enough for the non-reproducible convenience paths that
/// would use it; all measurement paths seed explicitly.
#[derive(Clone, Debug)]
pub struct StdRng(SmallRng);

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(SmallRng::from_seed(seed))
    }
}
