//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// Length specification for [`vec`]; converts from the range forms the
/// workspace uses.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
