//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crate registry, so this vendored
//! crate implements the subset of proptest the workspace's tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, integer-range
//! and simple regex (`[class]{lo,hi}`) strategies, [`collection::vec`],
//! tuples, [`Just`], [`prop_oneof!`] and `prop_assert*`.
//!
//! Differences from upstream, deliberately accepted:
//! * **No shrinking** — a failing case reports its inputs via the panic
//!   message (every generated binding is `Debug`-printed) but is not
//!   minimized.
//! * **Deterministic seeding** — each test function derives its RNG seed
//!   from the test name, so failures reproduce across runs; set
//!   `PROPTEST_SEED` to explore a different stream.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err`.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::SmallRng as TestRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy, Union};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Upstream-compatible constructor (`with_cases`).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A` (upstream `any::<A>()`).
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String strategy from a regex-like pattern. Supports the shape the
/// workspace uses: `[<class>]{lo,hi}` where the class may contain
/// literal characters, `a-z` ranges and `\n`/`\t`/`\\` escapes.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Parses `[<class>]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let bounds = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let lo: usize = bounds.0.trim().parse().ok()?;
    let hi: usize = bounds.1.trim().parse().ok()?;
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = class[i];
        if c == '\\' && i + 1 < class.len() {
            chars.push(match class[i + 1] {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            });
            i += 2;
        } else if i + 2 < class.len() && class[i + 1] == '-' {
            let end = class[i + 2];
            for v in (c as u32)..=(end as u32) {
                chars.push(char::from_u32(v)?);
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    if chars.is_empty() || lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

/// Everything a test body needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Derives a deterministic per-test seed. `PROPTEST_SEED` (a u64)
/// offsets the stream for exploratory reruns.
pub fn test_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    let extra: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    h ^ extra
}

/// Runs `body` for `cases` random cases (driver used by [`proptest!`]).
pub fn run_cases(name: &str, cases: u32, mut body: impl FnMut(&mut TestRng, u32)) {
    let mut rng = TestRng::seed_from_u64(test_seed(name));
    for case in 0..cases {
        body(&mut rng, case);
    }
}

/// Property-test entry macro. Supports the upstream surface used by the
/// workspace: an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), cfg.cases, |rng, case| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(e) = result {
                    eprintln!(
                        "proptest stub: case {case} of test {} failed (seed {:#x}; \
                         set PROPTEST_SEED to vary the stream)",
                        stringify!($name),
                        $crate::test_seed(stringify!($name)),
                    );
                    ::std::panic::resume_unwind(e);
                }
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Chooses uniformly between heterogeneous strategies with a common
/// value type (upstream `prop_oneof!`; weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::strategy::boxed_strategy($strat)),+])
    };
}
