//! The [`Strategy`] trait and combinators.

use crate::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (upstream `prop_map(...).boxed()` idiom).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Boxes a strategy, erasing its concrete type. Used by `prop_oneof!`
/// instead of an `as` cast so that integer-literal inference can still
/// unify the arms' value types.
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
